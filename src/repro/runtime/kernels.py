"""Fused inference kernels for the batched runtime.

These kernels operate on raw ``numpy`` arrays — no :class:`~repro.nn.tensor.Tensor`
wrappers, no autograd bookkeeping.  Three ideas keep them fast:

* **stride-tricks im2col with buffer reuse** — the sliding-window view of the
  padded input is materialised into a column buffer that is allocated once
  per (shape, dtype) and reused across calls through :class:`BufferCache`,
  so steady-state batched inference allocates nothing on the conv path;
* **fusion** — batch-norm is folded into the convolution weights at plan
  compile time, and the bias add + activation clip are applied in place on
  the GEMM output, so every conv layer makes a single pass over its output;
* **batched GEMM** — dense and pointwise convolutions are expressed as
  ``matmul`` over the whole micro-batch, hitting BLAS instead of Python
  loops.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..nn.conv import conv_output_size

#: Supported fused activations (applied in place on the layer output).
ACTIVATIONS = (None, "relu", "relu6")


def apply_activation(out: np.ndarray, act: Optional[str]) -> np.ndarray:
    """Apply ``act`` to ``out`` in place and return it."""
    if act is None:
        return out
    if act == "relu":
        return np.maximum(out, 0.0, out=out)
    if act == "relu6":
        return np.clip(out, 0.0, 6.0, out=out)
    raise ValueError(f"unknown activation {act!r}; expected one of {ACTIVATIONS}")


class BufferCache:
    """Reusable scratch buffers keyed by (tag, shape, dtype), LRU-bounded.

    The engine keeps one cache per plan so that consecutive ``run`` calls
    with the same micro-batch shape reuse the same im2col / padding / arena
    buffers instead of reallocating them for every layer of every batch.

    ``max_bytes`` caps the *scratch* buffers: past the budget the
    least-recently-used ones are dropped (the buffer just requested is never
    evicted, so the cache may transiently exceed the budget by one buffer).
    Arena slot buffers (``arena:`` tags, see
    :meth:`~repro.runtime.optimizer.MemoryPlan.out_view`) are the memory
    plan's working set — they are exempt from eviction and do not consume
    the budget (evicting them would silently degrade planned execution into
    per-step reallocation, and counting them would let a small budget thrash
    every scratch buffer).  They are bounded instead by the plan itself: one
    fixed-capacity buffer per slot, retired by the engine on replan via
    :meth:`drop_arena`.  Evicted buffers stay alive for as long as callers
    hold views into them — eviction only releases the cache's own reference.
    """

    #: Tag prefix of arena slot buffers: exempt from LRU eviction and from
    #: the ``max_bytes`` scratch budget.
    ARENA_PREFIX = "arena:"

    def __init__(self, max_bytes: Optional[int] = None):
        self._buffers: Dict[Tuple, np.ndarray] = {}
        self._nbytes = 0
        self._scratch_nbytes = 0
        self.max_bytes = max_bytes

    def get(self, tag: str, shape: Tuple[int, ...],
            dtype=np.float32) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype).str)
        arena = tag.startswith(self.ARENA_PREFIX)
        buffer = self._buffers.pop(key, None)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._nbytes += buffer.nbytes
            if not arena:
                self._scratch_nbytes += buffer.nbytes
        self._buffers[key] = buffer        # most recently used at the end
        if self.max_bytes is not None \
                and self._scratch_nbytes > self.max_bytes:
            for oldest in list(self._buffers):
                if self._scratch_nbytes <= self.max_bytes:
                    break
                if oldest == key or oldest[0].startswith(self.ARENA_PREFIX):
                    continue
                dropped = self._buffers.pop(oldest)
                self._nbytes -= dropped.nbytes
                self._scratch_nbytes -= dropped.nbytes
        return buffer

    def drop_arena(self) -> None:
        """Release every arena slot buffer (engine calls this on replan)."""
        for key in list(self._buffers):
            if key[0].startswith(self.ARENA_PREFIX):
                self._nbytes -= self._buffers.pop(key).nbytes

    def clear(self) -> None:
        self._buffers.clear()
        self._nbytes = 0
        self._scratch_nbytes = 0

    def check_invariants(self) -> None:
        """Verify the byte counters against the held buffers (tests only).

        ``_nbytes``/``_scratch_nbytes`` are maintained incrementally across
        ``get`` / eviction / :meth:`drop_arena` / :meth:`clear`; any drift
        between the counters and the actual working set would silently skew
        the LRU budget and every ``cache_bytes`` stat, so the LRU tests
        recompute both sums from scratch after each mutation.
        """
        total = sum(buffer.nbytes for buffer in self._buffers.values())
        scratch = sum(buffer.nbytes for key, buffer in self._buffers.items()
                      if not key[0].startswith(self.ARENA_PREFIX))
        if total != self._nbytes or scratch != self._scratch_nbytes:
            raise AssertionError(
                f"BufferCache byte accounting drifted: nbytes counter "
                f"{self._nbytes} vs actual {total}, scratch counter "
                f"{self._scratch_nbytes} vs actual {scratch}")

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        return self._nbytes


def sliding_window_view(x: np.ndarray, kh: int, kw: int,
                        stride: int) -> np.ndarray:
    """Zero-copy ``(N, C, kh, kw, out_h, out_w)`` window view of ``x``.

    ``x`` must already be padded.  The view aliases ``x``; callers copy it
    into a contiguous buffer before feeding a GEMM.
    """
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False)


def pad_cached(x: np.ndarray, padding: int,
               cache: Optional[BufferCache] = None) -> np.ndarray:
    """Zero-pad ``x`` spatially into a cached buffer.

    Only the halo ring is rezeroed on reuse: the interior is fully
    overwritten below, and the ring must be cleared every call because the
    cached buffer may hold a stale halo from a layer with a different
    ``(h, padding)`` split of the same padded shape.

    Coverage invariant (pinned by the mixed-padding poisoning test in
    ``tests/test_runtime_optimizer.py``): the four ring strips plus the
    interior assignment write *every* element of the padded buffer for the
    current ``(h, w, padding)`` — rows ``[0, p)`` and ``[h+p, h+2p)`` at full
    width, columns ``[0, p)`` and ``[w+p, w+2p)`` of the middle rows, and the
    ``h x w`` interior — so no byte from a previous call with a different
    halo split (the delta region between the old and new ring) can survive
    into the window view, no matter which layer used the buffer last.
    """
    n, c, h, w = x.shape
    padded_shape = (n, c, h + 2 * padding, w + 2 * padding)
    if cache is not None:
        padded = cache.get("pad", padded_shape, x.dtype)
        padded[:, :, :padding, :] = 0
        padded[:, :, h + padding:, :] = 0
        padded[:, :, padding:h + padding, :padding] = 0
        padded[:, :, padding:h + padding, w + padding:] = 0
    else:
        padded = np.zeros(padded_shape, dtype=x.dtype)
    padded[:, :, padding:padding + h, padding:padding + w] = x
    return padded


def im2col_cached(x: np.ndarray, kh: int, kw: int, stride: int, padding: int,
                  cache: Optional[BufferCache] = None) -> np.ndarray:
    """im2col into a cached contiguous buffer of shape (N, C, kh*kw, oh*ow)."""
    n, c, h, w = x.shape
    if padding > 0:
        x = pad_cached(x, padding, cache)
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    view = sliding_window_view(x, kh, kw, stride)
    cols_shape = (n, c, kh, kw, out_h, out_w)
    if cache is not None:
        cols = cache.get("col", cols_shape, x.dtype)
    else:
        cols = np.empty(cols_shape, dtype=x.dtype)
    np.copyto(cols, view)
    return cols.reshape(n, c, kh * kw, out_h * out_w)


def depthwise_conv(x: np.ndarray, weight: np.ndarray, stride: int = 1,
                   padding: int = 0, cache: Optional[BufferCache] = None,
                   out: Optional[np.ndarray] = None) -> np.ndarray:
    """Depthwise 2-D convolution without im2col.

    A depthwise kernel uses each column of the ``C*kh*kw`` im2col matrix for
    exactly one output channel — materialising it is an O(k²) waste.  This
    fast path multiply-accumulates the ``kh*kw`` taps of the zero-copy
    window view directly into the output.

    ``weight`` is ``(c, 1, kh, kw)`` *already cast to the accumulation
    dtype*: float32 for the float path, the exact-GEMM dtype for the int8
    path (integer products and sums are exact there, so the tap order cannot
    perturb a bit).  Returns ``(n, c, out_h, out_w)`` in the weight dtype.
    """
    n, c, h, w = x.shape
    kh, kw = weight.shape[2], weight.shape[3]
    if padding > 0:
        x = pad_cached(x, padding, cache)
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    view = sliding_window_view(x, kh, kw, stride)
    taps = weight.reshape(c, kh, kw)
    if out is None:
        out = np.empty((n, c, out_h, out_w), dtype=weight.dtype)
    np.multiply(view[:, :, 0, 0], taps[:, 0, 0].reshape(1, c, 1, 1), out=out)
    if kh * kw > 1:
        if cache is not None:
            scratch = cache.get("dwtap", out.shape, weight.dtype)
        else:
            scratch = np.empty_like(out)
        for i in range(kh):
            for j in range(kw):
                if i == 0 and j == 0:
                    continue
                np.multiply(view[:, :, i, j], taps[:, i, j].reshape(1, c, 1, 1),
                            out=scratch)
                out += scratch
    return out


def fused_conv(x: np.ndarray, weight: np.ndarray,
               bias: Optional[np.ndarray] = None, stride: int = 1,
               padding: int = 0, groups: int = 1, act: Optional[str] = None,
               cache: Optional[BufferCache] = None,
               out: Optional[np.ndarray] = None) -> np.ndarray:
    """Grouped 2-D convolution with the bias add and activation fused in.

    ``weight`` is ``(out_c, in_c // groups, kh, kw)`` — typically the
    BN-folded weight produced by the plan compiler, with ``bias`` holding the
    folded BN shift.  When ``out`` is given (a contiguous float32 array of
    the output shape, e.g. an arena slot view), the GEMM writes straight into
    it and the bias + activation epilogue runs in place — the kernel then
    allocates nothing.
    """
    n, c, h, w = x.shape
    out_c, c_per_group, kh, kw = weight.shape
    if c != c_per_group * groups:
        raise ValueError(
            f"input channels ({c}) incompatible with weight {weight.shape} "
            f"and groups={groups}")
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    spatial = out_h * out_w

    if out is None:
        out = np.empty((n, out_c, spatial), dtype=np.float32)
    dest = out.reshape(n, out_c, spatial)
    pointwise = (kh == 1 and kw == 1 and stride == 1 and padding == 0
                 and groups == 1)
    depthwise = groups == c and groups == out_c
    if pointwise:
        np.matmul(weight.reshape(out_c, c), x.reshape(n, c, spatial), out=dest)
    elif depthwise:
        depthwise_conv(x, weight, stride=stride, padding=padding, cache=cache,
                       out=dest.reshape(n, out_c, out_h, out_w))
    elif groups == 1:
        cols = im2col_cached(x, kh, kw, stride, padding, cache)
        np.matmul(weight.reshape(out_c, c * kh * kw),
                  cols.reshape(n, c * kh * kw, spatial), out=dest)
    else:
        cols = im2col_cached(x, kh, kw, stride, padding, cache)
        cols_g = cols.reshape(n, groups, c_per_group * kh * kw, spatial)
        weight_g = weight.reshape(groups, out_c // groups,
                                  c_per_group * kh * kw)
        np.einsum("gok,ngkl->ngol", weight_g, cols_g, optimize=True,
                  out=dest.reshape(n, groups, out_c // groups, spatial))
    if bias is not None:
        dest += bias.reshape(1, out_c, 1)
    apply_activation(dest, act)
    return dest.reshape(n, out_c, out_h, out_w)


def fused_linear(x: np.ndarray, weight: np.ndarray,
                 bias: Optional[np.ndarray] = None,
                 act: Optional[str] = None,
                 out: Optional[np.ndarray] = None) -> np.ndarray:
    """``x @ weight.T + bias`` with the activation fused in (weight (out, in))."""
    if out is None:
        out = np.matmul(x, weight.T)
    else:
        np.matmul(x, weight.T, out=out)
    if bias is not None:
        out += bias
    return apply_activation(out, act)


def batchnorm_inference(x: np.ndarray, scale: np.ndarray, shift: np.ndarray,
                        act: Optional[str] = None,
                        out: Optional[np.ndarray] = None) -> np.ndarray:
    """Eval-mode batch norm reduced to a per-channel affine map.

    ``scale``/``shift`` are the precomputed ``gamma / sqrt(var + eps)`` and
    ``beta - mean * scale`` vectors; works for both NCHW and (N, C) inputs.
    """
    shape = (1, -1, 1, 1) if x.ndim == 4 else (1, -1)
    if out is None:
        out = x * scale.reshape(shape)
    else:
        np.multiply(x, scale.reshape(shape), out=out)
    out += shift.reshape(shape)
    return apply_activation(out, act)


def global_avg_pool(x: np.ndarray,
                    out: Optional[np.ndarray] = None) -> np.ndarray:
    """Global average pooling of NCHW down to (N, C)."""
    return x.mean(axis=(2, 3), out=out)


def max_pool(x: np.ndarray, kernel_size: int, stride: int,
             out: Optional[np.ndarray] = None) -> np.ndarray:
    """Max pooling over square windows via the zero-copy window view."""
    view = sliding_window_view(x, kernel_size, kernel_size, stride)
    return view.max(axis=(2, 3), out=out)


def avg_pool(x: np.ndarray, kernel_size: int, stride: int,
             out: Optional[np.ndarray] = None) -> np.ndarray:
    """Average pooling over square windows via the zero-copy window view."""
    view = sliding_window_view(x, kernel_size, kernel_size, stride)
    return view.mean(axis=(2, 3), out=out)


# ---------------------------------------------------------------------------
# Integer (int8) execution kernels
# ---------------------------------------------------------------------------
#: Symmetric signed-int8 code range shared by weights and activations.
INT8_QMIN, INT8_QMAX = -127, 127

#: Largest worst-case |accumulator| for which a float32 GEMM is still exact
#: (every partial sum is an integer below 2**24, the float32 mantissa limit).
_F32_EXACT_LIMIT = 2 ** 24

#: Hard bound the integer path must respect: accumulators are int32 on the
#: target hardware, regardless of the dtype the host GEMM runs in.
INT32_ACC_LIMIT = 2 ** 31 - 1


def quantize_int8(x: np.ndarray, scale: float,
                  out: Optional[np.ndarray] = None) -> np.ndarray:
    """Quantize float values onto the symmetric int8 grid ``scale``.

    Matches the rounding of :func:`repro.quant.fake_quant.quantize`
    (round-half-to-even, clip to ±127) so integer plans reproduce the fake
    quantization of the eager path code-for-code.
    """
    codes = np.clip(np.rint(x / scale), INT8_QMIN, INT8_QMAX)
    if out is None:
        return codes.astype(np.int8)
    np.copyto(out, codes, casting="unsafe")
    return out


def dequantize_int8(q: np.ndarray, scale: float,
                    out: Optional[np.ndarray] = None) -> np.ndarray:
    """Map int8 codes back to float32 values."""
    if out is None:
        return q.astype(np.float32) * np.float32(scale)
    np.multiply(q, np.float32(scale), out=out)
    return out


def requantize_float(x: np.ndarray, scale: float,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
    """Fake-quantize a float tensor in place of a quantize+dequantize pair.

    First-class plan-op replacement for the eager activation fake-quant
    hooks: the output is float32 but every value sits on the int8 grid.
    """
    codes = np.clip(np.rint(x / scale), INT8_QMIN, INT8_QMAX)
    if out is None:
        return (codes * scale).astype(np.float32)
    np.copyto(out, codes * scale, casting="unsafe")
    return out


def requantize_codes(q: np.ndarray, in_scale: float, out_scale: float,
                     cache: Optional[BufferCache] = None,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
    """Rescale int8 codes from grid ``in_scale`` onto grid ``out_scale``.

    Fused form of a single-use ``dequantize -> quantize`` chain: the float
    intermediate lives in a scratch buffer instead of a plan register.  The
    arithmetic replicates the chain step for step, so the fusion is
    bit-exact.
    """
    if cache is not None:
        floats = cache.get("rqc", q.shape, np.float32)
        dequantize_int8(q, in_scale, out=floats)
    else:
        floats = dequantize_int8(q, in_scale)
    return quantize_int8(floats, out_scale, out=out)


def fused_add(x: np.ndarray, y: np.ndarray,
              in_scale_x: Optional[float] = None,
              in_scale_y: Optional[float] = None,
              act: Optional[str] = None,
              out_scale: Optional[float] = None,
              cache: Optional[BufferCache] = None,
              out: Optional[np.ndarray] = None) -> np.ndarray:
    """Residual add with dequantize/quantize neighbours folded in.

    ``in_scale_*`` dequantizes an int8 operand on the fly (exactly
    :func:`dequantize_int8`); ``out_scale`` requantizes the activated sum
    back to int8 codes (exactly :func:`quantize_int8`).  Every folded
    neighbour replays the arithmetic of the standalone plan step, so fusing
    never moves a bit — it only removes full-size intermediate registers.
    """
    if in_scale_x is not None:
        buffer = cache.get("addx", x.shape, np.float32) if cache is not None \
            else None
        x = dequantize_int8(x, in_scale_x, out=buffer)
    if in_scale_y is not None:
        buffer = cache.get("addy", y.shape, np.float32) if cache is not None \
            else None
        y = dequantize_int8(y, in_scale_y, out=buffer)
    if out_scale is None:
        if out is None:
            out = np.empty(x.shape, dtype=np.float32)
        np.add(x, y, out=out)
        return apply_activation(out, act)
    total = cache.get("addsum", x.shape, np.float32) if cache is not None \
        else np.empty(x.shape, dtype=np.float32)
    np.add(x, y, out=total)
    apply_activation(total, act)
    return quantize_int8(total, out_scale, out=out)


def int_global_avg_pool(q: np.ndarray, scale: float,
                        out: Optional[np.ndarray] = None) -> np.ndarray:
    """Global average pooling of int8 codes with exact integer accumulation.

    The spatial sum runs in int64 (exact for any int8 feature map), and only
    the final per-feature mean is mapped back to float through the single
    factor ``scale / (h * w)`` — one deterministic scalar multiply per
    output, independent of chunking, summation order and BLAS backend.
    Returns the dequantized ``(N, C)`` float32 pooled features, i.e. exactly
    what ``dequantize -> global_pool`` produces semantically, computed
    integer-first.
    """
    n, c, h, w = q.shape
    acc = q.sum(axis=(2, 3), dtype=np.int64)
    values = acc * (float(scale) / (h * w))
    if out is None:
        return values.astype(np.float32)
    np.copyto(out, values, casting="unsafe")
    return out


def quantize_weight_per_channel(weight: np.ndarray
                                ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-output-channel symmetric int8 quantization of a weight tensor.

    Returns ``(codes, scales)`` where ``codes`` is int8 with the same shape
    as ``weight`` and ``scales`` is a float64 vector over the leading (output
    channel) axis.  All-zero channels get scale 1.0 so downstream
    requantization multipliers stay finite.
    """
    flat = weight.reshape(weight.shape[0], -1)
    max_abs = np.abs(flat).max(axis=1).astype(np.float64)
    scales = np.where(max_abs > 0.0, max_abs / INT8_QMAX, 1.0)
    shaped = scales.reshape((-1,) + (1,) * (weight.ndim - 1))
    codes = np.clip(np.rint(weight / shaped), INT8_QMIN, INT8_QMAX)
    return codes.astype(np.int8), scales


def conv_accumulator_bound(weight_q: np.ndarray,
                           bias_q: Optional[np.ndarray] = None) -> int:
    """Worst-case |int32 accumulator| of an int8 conv/linear layer.

    Bounds the dot product by ``sum |w_q| * 127`` per output channel (the
    actual quantized weights, not the generic ``K * 127^2`` envelope) plus
    the bias magnitude.
    """
    per_channel = np.abs(weight_q.reshape(weight_q.shape[0], -1)
                         .astype(np.int64)).sum(axis=1) * INT8_QMAX
    if bias_q is not None:
        per_channel = per_channel + np.abs(bias_q.astype(np.int64))
    return int(per_channel.max()) if per_channel.size else 0


def _acc_dtype(bound: int):
    """GEMM dtype that accumulates integer values of magnitude ``bound`` exactly."""
    return np.float32 if bound < _F32_EXACT_LIMIT else np.float64


def _cast_cached(x: np.ndarray, dtype, tag: str,
                 cache: Optional[BufferCache]) -> np.ndarray:
    """Cast ``x`` into a cached buffer of ``dtype`` (exact for int8 sources)."""
    if x.dtype == dtype:
        return x
    if cache is not None:
        out = cache.get(tag, x.shape, dtype)
    else:
        out = np.empty(x.shape, dtype=dtype)
    np.copyto(out, x)
    return out


def int_accumulate_conv(q: np.ndarray, weight_q: np.ndarray, stride: int = 1,
                        padding: int = 0, groups: int = 1,
                        cache: Optional[BufferCache] = None,
                        acc_bound: Optional[int] = None) -> np.ndarray:
    """Exact integer conv accumulation of int8 activations against int8 weights.

    The GEMM runs in float32/float64 (hitting BLAS) but every partial sum is
    an integer below the chosen mantissa limit, so the result is *exactly*
    the int32-accumulate convolution — bit-for-bit identical regardless of
    batch split, BLAS threading or summation order.  Returns the integer
    accumulator as a float array of shape ``(N, out_c, spatial)``.
    """
    n, c, h, w = q.shape
    out_c, c_per_group, kh, kw = weight_q.shape
    if c != c_per_group * groups:
        raise ValueError(
            f"input channels ({c}) incompatible with weight {weight_q.shape} "
            f"and groups={groups}")
    bound = acc_bound if acc_bound is not None \
        else conv_accumulator_bound(weight_q)
    if bound > INT32_ACC_LIMIT:
        raise OverflowError(
            f"int8 conv accumulator bound {bound} exceeds the int32 range; "
            f"the layer cannot run on 32-bit accumulators")
    dtype = _acc_dtype(bound)
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    spatial = out_h * out_w

    pointwise = (kh == 1 and kw == 1 and stride == 1 and padding == 0
                 and groups == 1)
    depthwise = groups == c and groups == out_c
    weight_f = weight_q.astype(dtype)
    if cache is not None:
        acc = cache.get("qacc", (n, out_c, spatial), dtype)
    else:
        acc = np.empty((n, out_c, spatial), dtype=dtype)
    if pointwise:
        x_f = _cast_cached(q.reshape(n, c, spatial), dtype, "qpw", cache)
        np.matmul(weight_f.reshape(out_c, c), x_f, out=acc)
    elif depthwise:
        # Fast path: no im2col — per-tap multiply-accumulate on the window
        # view.  Every product and partial sum is an exact integer below the
        # mantissa limit, so the tap order cannot change a bit of the result.
        depthwise_conv(q, weight_f, stride=stride, padding=padding,
                       cache=cache, out=acc.reshape(n, out_c, out_h, out_w))
    else:
        cols = im2col_cached(q, kh, kw, stride, padding, cache)
        cols_f = _cast_cached(cols, dtype, "qcol", cache)
        if groups == 1:
            np.matmul(weight_f.reshape(out_c, c * kh * kw),
                      cols_f.reshape(n, c * kh * kw, spatial), out=acc)
        else:
            cols_g = cols_f.reshape(n, groups, c_per_group * kh * kw, spatial)
            weight_g = weight_f.reshape(groups, out_c // groups,
                                        c_per_group * kh * kw)
            np.einsum("gok,ngkl->ngol", weight_g, cols_g, optimize=True,
                      out=acc.reshape(n, groups, out_c // groups, spatial))
    return acc


def fused_qconv(q: np.ndarray, weight_q: np.ndarray, bias_q: np.ndarray,
                multiplier: np.ndarray, stride: int = 1, padding: int = 0,
                groups: int = 1, qmin: int = INT8_QMIN, qmax: int = INT8_QMAX,
                cache: Optional[BufferCache] = None,
                acc_bound: Optional[int] = None,
                out: Optional[np.ndarray] = None) -> np.ndarray:
    """Int8 conv with the requantization epilogue fused in.

    ``acc = conv_int32(q, weight_q) + bias_q`` followed by the per-channel
    rescale ``clip(round(acc * multiplier), qmin, qmax)`` back to int8, with
    the activation expressed through the clamp bounds (``qmin=0`` for ReLU,
    ``qmax=round(6/scale)`` capped at 127 for ReLU6).
    """
    n = q.shape[0]
    out_c = weight_q.shape[0]
    acc = int_accumulate_conv(q, weight_q, stride=stride, padding=padding,
                              groups=groups, cache=cache, acc_bound=acc_bound)
    acc += bias_q.astype(acc.dtype).reshape(1, out_c, 1)
    # float32 * float64 promotes each product to float64 exactly — no
    # explicit astype copy needed on the hot path.
    scaled = acc * multiplier.reshape(1, out_c, 1)
    np.rint(scaled, out=scaled)
    np.clip(scaled, qmin, qmax, out=scaled)
    kh, kw = weight_q.shape[2], weight_q.shape[3]
    out_h = conv_output_size(q.shape[2], kh, stride, padding)
    out_w = conv_output_size(q.shape[3], kw, stride, padding)
    if out is None:
        codes = scaled.astype(np.int8)
    else:
        codes = out.reshape(n, out_c, out_h * out_w)
        np.copyto(codes, scaled, casting="unsafe")
    return codes.reshape(n, out_c, out_h, out_w)


def fused_qconv_dequant(q: np.ndarray, weight_q: np.ndarray,
                        dequant: np.ndarray, bias: Optional[np.ndarray] = None,
                        stride: int = 1, padding: int = 0, groups: int = 1,
                        act: Optional[str] = None,
                        cache: Optional[BufferCache] = None,
                        acc_bound: Optional[int] = None,
                        out: Optional[np.ndarray] = None) -> np.ndarray:
    """Int8 conv dequantized straight to float32 (no output scale needed).

    Used where the plan has no calibrated output range (e.g. the projection
    convolution feeding a residual add): the int32 accumulator is mapped back
    to float via the per-channel ``dequant = s_in * s_w[c]`` factors and the
    float bias is added on top.
    """
    n = q.shape[0]
    out_c = weight_q.shape[0]
    acc = int_accumulate_conv(q, weight_q, stride=stride, padding=padding,
                              groups=groups, cache=cache, acc_bound=acc_bound)
    kh, kw = weight_q.shape[2], weight_q.shape[3]
    out_h = conv_output_size(q.shape[2], kh, stride, padding)
    out_w = conv_output_size(q.shape[3], kw, stride, padding)
    scaled = acc * dequant.reshape(1, out_c, 1)
    if out is None:
        dest = scaled.astype(np.float32)
    else:
        dest = out.reshape(n, out_c, out_h * out_w)
        np.copyto(dest, scaled, casting="unsafe")
    if bias is not None:
        dest += bias.reshape(1, out_c, 1)
    apply_activation(dest, act)
    return dest.reshape(n, out_c, out_h, out_w)


def fused_qlinear(q: np.ndarray, weight_q: np.ndarray, dequant: np.ndarray,
                  bias: Optional[np.ndarray] = None,
                  act: Optional[str] = None,
                  out: Optional[np.ndarray] = None) -> np.ndarray:
    """Int8 GEMM ``q @ weight_q.T`` with a float rescale at the end.

    ``weight_q`` is ``(out, in)`` int8; ``dequant`` holds the per-output-row
    ``s_in * s_w[row]`` factors.  The accumulation is exact (see
    :func:`int_accumulate_conv`), the output is float32.
    """
    bound = conv_accumulator_bound(weight_q)
    if bound > INT32_ACC_LIMIT:
        raise OverflowError(
            f"int8 linear accumulator bound {bound} exceeds the int32 range")
    dtype = _acc_dtype(bound)
    acc = np.matmul(q.astype(dtype), weight_q.T.astype(dtype))
    scaled = acc * dequant.reshape(1, -1)
    if out is None:
        dest = scaled.astype(np.float32)
    else:
        dest = out
        np.copyto(dest, scaled, casting="unsafe")
    if bias is not None:
        dest += bias
    return apply_activation(dest, act)


def quantize_unit_rows(matrix: np.ndarray) -> np.ndarray:
    """Quantize rows of a unit-norm matrix to int8 at the fixed scale 1/127.

    Row-normalised matrices (features, prototypes) live in ``[-1, 1]``, so a
    static power-free scale of ``1/127`` loses no range; the fixed scale
    keeps the codes independent of batch composition, which is what makes
    int8 prototype matching bitwise reproducible under sharding.
    """
    return np.clip(np.rint(matrix * INT8_QMAX), INT8_QMIN, INT8_QMAX) \
        .astype(np.int8)


def int8_cosine_similarities(features: np.ndarray,
                             prototypes_q: np.ndarray,
                             eps: float = 1e-12) -> np.ndarray:
    """Cosine similarity as an int8 GEMM with a float rescale at the end.

    Features are L2-normalised in float, quantized per element at the fixed
    ``1/127`` scale, multiplied against pre-quantized unit-norm prototypes
    in an exact integer GEMM and rescaled by ``1/127**2``.  Per-sample
    normalisation + elementwise quantization keep every row independent of
    the rest of the batch, so sharded and local execution agree bit-for-bit.
    """
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    features_q = quantize_unit_rows(features / (norms + eps))
    # Worst case |acc| = dim * 127 * 127: exact in float64 up to dim ~ 5e8.
    acc = np.matmul(features_q.astype(np.float64),
                    prototypes_q.T.astype(np.float64))
    return (acc / float(INT8_QMAX) ** 2).astype(np.float32)


def normalize_prototypes(matrix: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Row-wise L2 normalisation of a prototype matrix (float32).

    Shared by the predictor's prototype cache and the serving snapshots
    (:mod:`repro.serve`) so every execution path serves bit-identical
    similarity scores from the same normalised matrix.
    """
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return (matrix / (norms + eps)).astype(np.float32)


def cosine_similarities(features: np.ndarray, prototypes_normed: np.ndarray,
                        eps: float = 1e-12) -> np.ndarray:
    """Cosine similarity of raw features against pre-normalised prototypes.

    Normalising the prototype matrix once per memory version (instead of per
    query batch) is what makes whole-session prediction a single GEMM.
    """
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    normed = features / (norms + eps)
    return normed @ prototypes_normed.T
