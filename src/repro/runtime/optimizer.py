"""Post-compile plan optimization and arena memory planning.

The compiler (:mod:`repro.runtime.compiler`) emits a faithful flat plan; this
module makes it cheap to execute without moving a single output bit.  The
optimization passes run on the SSA graph IR of :mod:`repro.runtime.ir`: the
plan is promoted to a typed def-use graph, rewritten by the legality-checked
rules of :mod:`repro.runtime.rewrites`, and lowered back to a flat plan with
its register names intact (so arena plans, snapshots and golden fixtures
keyed by register names stay valid).

* :func:`eliminate_dead_steps` — drop steps whose output no later step (and
  not the plan output) reads.  Pure ops only: ``opaque`` steps may carry
  side effects (forward hooks) and are always kept.
* :func:`fuse_quantize_chains` — the four quantize-chain fusions
  (``dequantize -> add``, ``add -> quantize``, ``dequantize -> quantize``,
  same-scale ``requantize -> quantize``), each replaying the unfused
  arithmetic bit for bit.
* :func:`fold_identities` — bit-exact folding of statically-determined
  chains: ``act=None`` copies, same-scale ``quantize∘dequantize``
  round-trips of typed int8 codes, and standalone activations absorbed into
  their producer's empty ``act`` slot.
* :func:`eliminate_common_subexpressions` — merge pure nodes computing the
  identical value across residual branches.
* :func:`superfuse_residual_adds` — the int8 residual superfusion
  ``qconv_dequant -> add [-> requantize]`` into one ``qconv_add`` step.
* :func:`optimize_plan` — the full pipeline; the resulting plan carries the
  per-rule application counts in ``plan.pass_stats``.
* :func:`plan_memory` — a liveness-based arena planner: every step output is
  assigned to one of a small set of reusable slots such that no two
  simultaneously-live registers ever share one.  The executor
  (:meth:`InferencePlan.execute`) then writes kernels straight into slot
  views through their ``out=`` paths, which drops steady-state allocation on
  the plan body to (near) zero and shrinks peak intermediate memory by the
  recorded ``peak_bytes`` / ``unplanned_bytes`` ratio.

Memory planning needs concrete shapes, which depend on the micro-batch; the
engine records them from the first real chunk it executes (no synthetic dry
run — opaque steps may carry observing hooks that must never see fake data)
and plans the arena from the per-sample shapes, which scale linearly with
the batch dimension for every op in the plan vocabulary.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .ir import Graph
from .plan import InferencePlan
from .rewrites import (
    FOLD_RULES,
    FUSION_RULES,
    CommonSubexpressionElimination,
    DeadNodeElimination,
    QConvAddSuperfusion,
    run_pipeline,
)

#: Ops whose output is a reshaped view of their input: the planner aliases
#: the output onto the input's storage instead of assigning a slot.
ALIAS_OPS = ("flatten",)


# ---------------------------------------------------------------------------
# Optimization passes (flat-plan façade over the graph rules)
# ---------------------------------------------------------------------------
def _run_rules(plan: InferencePlan, rule_classes) -> InferencePlan:
    """Run graph rules over ``plan``; return ``plan`` itself when nothing
    applied (callers and tests rely on the no-op identity)."""
    graph = Graph.from_plan(plan)
    applied = sum(rule_cls().run(graph) for rule_cls in rule_classes)
    if not applied:
        return plan
    return graph.to_plan()


def eliminate_dead_steps(plan: InferencePlan) -> InferencePlan:
    """Drop steps whose output register nothing reads.

    ``opaque`` steps are kept unconditionally — they call live modules whose
    forward hooks may observe or mutate state, so eliminating them could
    change semantics even when their output is unused.
    """
    return _run_rules(plan, (DeadNodeElimination,))


def fuse_quantize_chains(plan: InferencePlan) -> InferencePlan:
    """Fuse quantize/dequantize/requantize chains into their neighbours.

    Rewrites (all restricted to single-use intermediates, and all replaying
    the unfused arithmetic bit for bit):

    * ``dequantize -> add``: the add dequantizes the int8 operand on the fly
      (``in_scale_0`` / ``in_scale_1`` attrs);
    * ``add -> quantize``: the add requantizes its activated sum straight to
      int8 codes (``out_scale`` attr);
    * ``dequantize -> quantize``: a single ``qrequantize`` step rescales the
      codes through a scratch buffer instead of a full float register;
    * ``requantize -> quantize`` at the same scale: the requantize is
      dropped (``round(round(x/s)*s/s) == round(x/s)`` exactly for int8
      code magnitudes).
    """
    return _run_rules(plan, FUSION_RULES)


def fold_identities(plan: InferencePlan) -> InferencePlan:
    """Fold statically-determined identity chains (bit-exact subset only).

    ``act=None`` copy steps forward their input; same-scale
    ``quantize(dequantize(q))`` round-trips of *typed* int8 codes forward
    the original codes; standalone activations fold into their producer's
    empty ``act`` slot.  Rewrites that would be algebraically tempting but
    not bit-exact in float32 (conv+BN re-folding, requantize chains at
    different scales) are deliberately not performed.
    """
    return _run_rules(plan, FOLD_RULES)


def eliminate_common_subexpressions(plan: InferencePlan) -> InferencePlan:
    """Merge pure steps computing the identical value (see
    :class:`~repro.runtime.rewrites.CommonSubexpressionElimination`)."""
    return _run_rules(plan, (CommonSubexpressionElimination,))


def superfuse_residual_adds(plan: InferencePlan) -> InferencePlan:
    """Fuse ``qconv_dequant -> add`` residual joins into ``qconv_add`` steps
    (see :class:`~repro.runtime.rewrites.QConvAddSuperfusion`)."""
    return _run_rules(plan, (QConvAddSuperfusion,))


def optimize_plan(plan: InferencePlan) -> InferencePlan:
    """Run the full graph pipeline; idempotent on already-optimized plans.

    The returned plan's ``pass_stats`` maps each rewrite rule to its
    application count (threaded into ``plan_stats`` and the engine's
    metrics gauges).
    """
    if plan.optimized:
        return plan
    graph = Graph.from_plan(plan)
    stats = run_pipeline(graph)
    return graph.to_plan(optimized=True, pass_stats=stats)


# ---------------------------------------------------------------------------
# Arena memory planning
# ---------------------------------------------------------------------------
@dataclass
class MemoryPlan:
    """Static arena assignment for one plan at one per-sample input shape.

    Slots are byte arenas sized per sample; at execution the engine
    materialises each slot as a single uint8 buffer of ``slot_size * batch``
    through the :class:`~repro.runtime.kernels.BufferCache` and hands kernels
    contiguous typed views into it.  The plan input, the plan output (and
    anything aliasing it), and ``opaque`` outputs stay unmanaged — the
    output must survive arena reuse across chunks, and opaque modules
    allocate their own results.
    """

    input_shape: Tuple[int, ...]              # per-sample plan input shape
    slot_of: Dict[str, int]                   # managed register -> slot id
    alias_of: Dict[str, str]                  # view register -> source register
    shapes: Dict[str, Tuple[int, ...]]        # managed register -> per-sample shape
    dtypes: Dict[str, str]                    # managed register -> dtype str
    slot_sizes: List[int]                     # per-slot per-sample bytes
    unplanned_per_sample: int                 # sum of every step-output's bytes
    #: batch size the arena buffers are allocated for (the engine's
    #: micro-batch): every chunk size up to it slices the same fixed-capacity
    #: buffer, so varying batch sizes (dynamic batchers, remainder chunks)
    #: cannot accumulate per-size buffers in the cache.
    capacity_batch: int = 1
    _specs: Dict[str, Tuple] = field(default_factory=dict, repr=False)
    #: bumped whenever the arena is rekeyed (capacity growth): caches stamp
    #: the generation they materialised their slot buffers under, so every
    #: cache — including the per-thread ones an engine registers — lazily
    #: retires stale-capacity buffers on its next use instead of pinning
    #: them forever (arena buffers are exempt from LRU eviction).
    _arena_generation: int = field(default=0, repr=False)

    def __post_init__(self):
        for register, slot in self.slot_of.items():
            shape = self.shapes[register]
            dtype = np.dtype(self.dtypes[register])
            nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            self._specs[register] = (slot, shape, dtype, nbytes)

    # ------------------------------------------------------------------
    @property
    def num_slots(self) -> int:
        return len(self.slot_sizes)

    def peak_bytes(self, batch: int = 1) -> int:
        """Arena footprint for a micro-batch of ``batch`` samples."""
        return sum(self.slot_sizes) * batch

    def unplanned_bytes(self, batch: int = 1) -> int:
        """What per-step fresh allocation would touch for the same batch."""
        return self.unplanned_per_sample * batch

    def matches(self, per_sample_shape: Tuple[int, ...]) -> bool:
        return tuple(per_sample_shape) == self.input_shape

    def out_view(self, register: str, batch: int, cache) -> Optional[np.ndarray]:
        """Typed contiguous view into the register's arena slot (or None).

        Every chunk size up to ``capacity_batch`` slices the *front* of the
        same fixed-capacity slot buffer: per-sample shapes scale linearly in
        the leading (batch) dimension for every op in the plan vocabulary,
        so the prefix of ``batch * nbytes`` bytes is exactly the contiguous
        C-order layout the kernels' ``out=`` paths expect — remainder chunks
        (``N % micro_batch != 0``) and first runs smaller than the
        micro-batch reuse the full-chunk buffers without any stride games.
        A chunk *larger* than the capacity (only reachable by executing the
        plan directly, outside the engine, which clamps chunks to its
        micro-batch) rekeys the arena at the larger capacity instead of
        accumulating one eviction-exempt buffer per distinct oversize.
        """
        spec = self._specs.get(register)
        if spec is None:
            return None
        slot, shape, dtype, nbytes = spec
        capacity = getattr(self, "capacity_batch", 1)
        generation = getattr(self, "_arena_generation", 0)
        if batch > capacity:
            self.capacity_batch = capacity = batch
            generation = self._arena_generation = generation + 1
        if getattr(cache, "_arena_generation", None) != generation:
            # First contact of this cache with the current arena keying
            # (or a capacity bump happened since): retire whatever arena
            # buffers the cache still holds under the old keys.
            cache.drop_arena()
            cache._arena_generation = generation
        buffer = cache.get(f"arena:{slot}",
                           (self.slot_sizes[slot] * capacity,), np.uint8)
        return buffer[:nbytes * batch].view(dtype).reshape((batch,) + shape)

    def describe(self) -> str:
        """Summary lines appended by :meth:`InferencePlan.describe`."""
        by_slot: Dict[int, List[str]] = {}
        for register, slot in self.slot_of.items():
            by_slot.setdefault(slot, []).append(register)
        lines = [f"# arena: {self.num_slots} slots, "
                 f"{self.peak_bytes(1)} bytes/sample "
                 f"(unplanned {self.unplanned_per_sample} bytes/sample)"]
        for slot in range(self.num_slots):
            hosted = " ".join(by_slot.get(slot, []))
            lines.append(f"#   slot {slot}: {self.slot_sizes[slot]} B/sample"
                         f" <- {hosted}")
        return "\n".join(lines)


def plan_memory(plan: InferencePlan, recorded: Dict[str, Tuple],
                batch_shape: Tuple[int, ...],
                capacity_batch: Optional[int] = None) -> MemoryPlan:
    """Build a :class:`MemoryPlan` from one recorded execution.

    ``recorded`` maps each step output to its observed ``(shape, dtype
    string)`` at batch size ``batch_shape[0]`` (collected by
    ``InferencePlan.execute(..., record=...)``).  Registers whose leading
    dimension is not the batch size cannot be rescaled to other micro-batch
    sizes and stay unmanaged.  ``capacity_batch`` sizes the arena buffers
    (the engine passes its micro-batch); it defaults to the recorded batch.
    """
    batch = int(batch_shape[0])
    alias_of: Dict[str, str] = {}
    unmanaged = {plan.input_register}
    per_sample_bytes: Dict[str, int] = {}
    shapes: Dict[str, Tuple[int, ...]] = {}
    dtypes: Dict[str, str] = {}
    unplanned = 0
    for step in plan.steps:
        if step.op in ALIAS_OPS:
            alias_of[step.output] = step.inputs[0]
            continue
        shape, dtype_str = recorded[step.output]
        dtype = np.dtype(dtype_str)
        if step.op == "opaque" or len(shape) < 1 or shape[0] != batch:
            unmanaged.add(step.output)
            continue
        sample_shape = tuple(int(dim) for dim in shape[1:])
        nbytes = int(np.prod(sample_shape, dtype=np.int64)) * dtype.itemsize
        per_sample_bytes[step.output] = nbytes
        shapes[step.output] = sample_shape
        dtypes[step.output] = dtype.str
        unplanned += nbytes

    def root(register: str) -> str:
        while register in alias_of:
            register = alias_of[register]
        return register

    # The plan output is returned to the caller and must survive the next
    # chunk's arena reuse; unmanaging its root also covers aliases of it.
    unmanaged.add(root(plan.output_register))

    # Liveness per root register: defined at its producing step, last read at
    # the latest read of itself or any view of it.
    last_read: Dict[str, int] = {}
    for register, index in plan.last_use().items():
        register = root(register)
        last_read[register] = max(last_read.get(register, -1), index)

    slot_of: Dict[str, int] = {}
    slot_sizes: List[int] = []
    free: List[int] = []
    active: List[Tuple[int, int]] = []        # heap of (last read, slot)
    for index, step in enumerate(plan.steps):
        # Slots whose register was last read strictly before this step are
        # reusable now; registers read *by* this step stay bound until after
        # it, so a step output can never alias one of its inputs.
        while active and active[0][0] < index:
            _, slot = heapq.heappop(active)
            free.append(slot)
        register = step.output
        if register in alias_of or register in unmanaged \
                or root(register) in unmanaged:
            continue
        need = per_sample_bytes[register]
        fitting = [slot for slot in free if slot_sizes[slot] >= need]
        if fitting:
            slot = min(fitting, key=lambda s: slot_sizes[s])
            free.remove(slot)
        elif free:
            slot = max(free, key=lambda s: slot_sizes[s])
            free.remove(slot)
            slot_sizes[slot] = need
        else:
            slot = len(slot_sizes)
            slot_sizes.append(need)
        slot_of[register] = slot
        heapq.heappush(active, (last_read.get(register, index), slot))

    return MemoryPlan(input_shape=tuple(int(dim) for dim in batch_shape[1:]),
                      slot_of=slot_of, alias_of=alias_of, shapes=shapes,
                      dtypes=dtypes, slot_sizes=slot_sizes,
                      unplanned_per_sample=unplanned,
                      capacity_batch=max(batch, capacity_batch or batch))
