"""Shared fixtures for the test suite.

Expensive objects (the synthetic FSCIL benchmark and a lightly trained
O-FSCIL model) are session-scoped so the many tests that need them do not
retrain from scratch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MetalearnConfig,
    OFSCIL,
    OFSCILConfig,
    PretrainConfig,
    metalearn,
    pretrain,
)
from repro.data import build_synthetic_fscil

TEST_BACKBONE = "mobilenetv2_x4_tiny"


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_benchmark():
    """Miniature FSCIL benchmark (8 base classes, 4 incremental sessions)."""
    return build_synthetic_fscil("test", seed=0)


@pytest.fixture(scope="session")
def trained_model(tiny_benchmark):
    """An O-FSCIL model briefly pretrained + metalearned on the tiny benchmark.

    The schedule is deliberately short (a few seconds); tests only rely on
    the model being *functional* and better than chance, not on absolute
    accuracy.
    """
    model = OFSCIL.from_registry(TEST_BACKBONE, OFSCILConfig(backbone=TEST_BACKBONE),
                                 seed=0)
    pretrain(model.backbone, model.fcr, tiny_benchmark.base_train,
             num_classes=tiny_benchmark.protocol.base_classes,
             config=PretrainConfig(epochs=14, batch_size=32, learning_rate=0.12,
                                   use_feature_interpolation=False, seed=0))
    metalearn(model.backbone, model.fcr, tiny_benchmark.base_train,
              MetalearnConfig(iterations=8, meta_shots=5, queries_per_class=2,
                              learning_rate=0.02, seed=0))
    return model


@pytest.fixture()
def fresh_model():
    """An untrained O-FSCIL model (cheap; function-scoped)."""
    return OFSCIL.from_registry(TEST_BACKBONE, OFSCILConfig(backbone=TEST_BACKBONE),
                                seed=3)
