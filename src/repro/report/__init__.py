"""Reporting helpers: text tables and experiment records."""

from .bench import (
    DEFAULT_HISTORY_LIMIT,
    append_bench_record,
    append_keyed_bench_record,
    load_bench,
    load_keyed_bench,
)
from .records import ExperimentRecord, load_records, save_records
from .tables import dict_rows_to_table, format_table, relative_error

__all__ = [
    "append_bench_record",
    "append_keyed_bench_record",
    "load_bench",
    "load_keyed_bench",
    "DEFAULT_HISTORY_LIMIT",
    "format_table",
    "dict_rows_to_table",
    "relative_error",
    "ExperimentRecord",
    "save_records",
    "load_records",
]
