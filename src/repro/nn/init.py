"""Weight initialization schemes for the NumPy NN substrate."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def _fan_in_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for linear or convolutional weight shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        out_c, in_c, kh, kw = shape
        receptive = kh * kw
        return in_c * receptive, out_c * receptive
    fan = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    return fan, shape[0]


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator,
                   nonlinearity: str = "relu", dtype=np.float32) -> np.ndarray:
    """He-normal initialization appropriate for ReLU-family activations."""
    fan_in, _ = _fan_in_fan_out(shape)
    gain = math.sqrt(2.0) if nonlinearity in ("relu", "relu6") else 1.0
    std = gain / math.sqrt(max(fan_in, 1))
    return (rng.standard_normal(shape) * std).astype(dtype)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                    nonlinearity: str = "relu", dtype=np.float32) -> np.ndarray:
    fan_in, _ = _fan_in_fan_out(shape)
    gain = math.sqrt(2.0) if nonlinearity in ("relu", "relu6") else 1.0
    bound = gain * math.sqrt(3.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator,
                  dtype=np.float32) -> np.ndarray:
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = math.sqrt(2.0 / max(fan_in + fan_out, 1))
    return (rng.standard_normal(shape) * std).astype(dtype)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                   dtype=np.float32) -> np.ndarray:
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = math.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def uniform_bias(fan_in: int, shape: Tuple[int, ...], rng: np.random.Generator,
                 dtype=np.float32) -> np.ndarray:
    """Torch-style bias initialization: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    bound = 1.0 / math.sqrt(max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def zeros(shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
    return np.zeros(shape, dtype=dtype)


def ones(shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
    return np.ones(shape, dtype=dtype)
