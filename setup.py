"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package can be installed in
environments without the ``wheel`` package (legacy editable installs).
"""

from setuptools import setup

setup()
