"""GAP9 deployment plan, power model and the Table IV / Fig. 2 profiler."""

import pytest

from repro.hw import (
    EnergyReport,
    FIG2_CORE_COUNTS,
    GAP9Config,
    GAP9Profiler,
    PAPER_TABLE4_REFERENCE,
    PowerModel,
    combine_reports,
    deploy_backbone,
    fold_batchnorm,
    format_table4,
)
from repro.models import get_config


@pytest.fixture(scope="module")
def profiler():
    return GAP9Profiler()


class TestDeployment:
    def test_fold_batchnorm_removes_bn(self):
        layers = get_config("mobilenetv2").layer_specs()
        folded = fold_batchnorm(layers)
        assert all(layer.op_type != "bn" for layer in folded)
        assert len(folded) < len(layers)

    def test_deployment_summary(self):
        plan = deploy_backbone("mobilenetv2_x4")
        summary = plan.summary()
        assert summary["total_macs"] == pytest.approx(147.8e6, rel=0.02)
        assert summary["weight_bytes"] == pytest.approx(2.2e6, rel=0.2)
        assert summary["num_layers"] > 40

    def test_latency_positive_and_decreases_with_cores(self):
        plan = deploy_backbone("mobilenetv2_x4")
        latencies = [plan.latency_ms(cores) for cores in (1, 2, 4, 8)]
        assert all(lat > 0 for lat in latencies)
        assert all(a > b for a, b in zip(latencies, latencies[1:]))

    def test_utilization_factors_in_unit_range(self):
        plan = deploy_backbone("mobilenetv2")
        utilization = plan.utilization(8)
        assert 0.0 <= utilization["compute"] <= 1.0
        assert 0.0 <= utilization["l3"] <= 1.0

    def test_cost_caching(self):
        plan = deploy_backbone("mobilenetv2")
        assert plan.cost(8) is plan.cost(8)


class TestPowerModel:
    def test_idle_vs_busy_power(self):
        model = PowerModel(GAP9Config())
        idle = model.average_power_mw(0.0, 0.0)
        busy = model.average_power_mw(1.0, 1.0)
        assert busy.total_mw > idle.total_mw
        assert idle.total_mw > 0

    def test_power_in_paper_envelope(self):
        """All measured operations stay within the ~40-55 mW envelope."""
        model = PowerModel(GAP9Config())
        power = model.average_power_mw(0.9, 0.05)
        assert 35.0 < power.total_mw < 55.0

    def test_energy_is_time_times_power(self):
        model = PowerModel(GAP9Config())
        assert model.energy_mj(100.0, 50.0) == pytest.approx(5.0)

    def test_combine_reports(self):
        a = EnergyReport("op", "bb", time_ms=10.0, power_mw=40.0, energy_mj=0.4,
                         cycles=100, macs=1000)
        b = EnergyReport("op", "bb", time_ms=30.0, power_mw=50.0, energy_mj=1.5,
                         cycles=300, macs=3000)
        combined = combine_reports("both", "bb", [a, b])
        assert combined.time_ms == pytest.approx(40.0)
        assert combined.energy_mj == pytest.approx(1.9)
        assert combined.power_mw == pytest.approx(1.9 / 40.0 * 1e3)

    def test_operating_point_scaling(self):
        from repro.hw import OPERATING_POINTS
        model = PowerModel(GAP9Config())
        efficient = model.average_power_mw(1.0, 0.0)
        fast = model.average_power_mw(1.0, 0.0,
                                      operating_point=OPERATING_POINTS["performance"])
        assert fast.total_mw > efficient.total_mw


class TestTable4:
    """Reproduction of the paper's latency / power / energy measurements."""

    @pytest.fixture(scope="class")
    def rows(self, profiler):
        return {(row.operation, row.backbone): row for row in profiler.table4()}

    def test_all_rows_present(self, rows):
        operations = {op for op, _ in rows}
        assert operations == {"FCR", "BB inference", "EM update", "FCR finetune"}

    @pytest.mark.parametrize("backbone", ["mobilenetv2", "mobilenetv2_x2",
                                          "mobilenetv2_x4"])
    def test_backbone_latency_within_25_percent(self, rows, backbone):
        paper = PAPER_TABLE4_REFERENCE["BB inference"][backbone]["time_ms"]
        measured = rows[("BB inference", backbone)].time_ms
        assert measured == pytest.approx(paper, rel=0.25)

    @pytest.mark.parametrize("backbone", ["mobilenetv2", "mobilenetv2_x2",
                                          "mobilenetv2_x4"])
    def test_em_update_energy_within_25_percent(self, rows, backbone):
        paper = PAPER_TABLE4_REFERENCE["EM update"][backbone]["energy_mj"]
        measured = rows[("EM update", backbone)].energy_mj
        assert measured == pytest.approx(paper, rel=0.25)

    def test_headline_claim_12mj_per_class(self, rows):
        """The paper's headline: learning a new class costs ~12 mJ on the
        smallest MobileNetV2 (without fine-tuning)."""
        energy = rows[("EM update", "mobilenetv2")].energy_mj
        assert 8.0 < energy < 16.0

    def test_fcr_latency_close_to_paper(self, rows):
        measured = rows[("FCR", "mobilenetv2_x4")].time_ms
        assert measured == pytest.approx(3.23, rel=0.25)

    def test_power_within_envelope(self, rows):
        for row in rows.values():
            assert 38.0 < row.power_mw < 58.0

    def test_em_update_is_shots_times_bb_plus_fcr(self, profiler):
        bb = profiler.profile_backbone_inference("mobilenetv2_x4")
        fcr = profiler.profile_fcr("mobilenetv2_x4")
        em = profiler.profile_em_update("mobilenetv2_x4", shots=5)
        assert em.time_ms == pytest.approx(5 * (bb.time_ms + fcr.time_ms), rel=0.02)

    def test_finetune_much_more_expensive_than_em_update(self, rows):
        for backbone in ("mobilenetv2", "mobilenetv2_x4"):
            finetune = rows[("FCR finetune", backbone)].energy_mj
            em_update = rows[("EM update", backbone)].energy_mj
            assert finetune > 10 * em_update

    def test_finetune_energy_order_of_magnitude(self, rows):
        measured = rows[("FCR finetune", "mobilenetv2_x4")].energy_mj
        assert 200.0 < measured < 450.0

    def test_energy_ordering_across_backbones(self, rows):
        energies = [rows[("EM update", name)].energy_mj
                    for name in ("mobilenetv2", "mobilenetv2_x2", "mobilenetv2_x4")]
        assert energies[0] < energies[1] < energies[2]

    def test_format_table4(self, profiler):
        table = format_table4(profiler.table4())
        assert "EM update" in table and "Energy [mJ]" in table


class TestFig2:
    @pytest.fixture(scope="class")
    def fig2(self, profiler):
        return profiler.fig2_macs_per_cycle()

    def test_structure(self, fig2):
        assert set(fig2) == {"backbone", "fcr", "finetune"}
        assert set(fig2["backbone"]) == {"mobilenetv2", "mobilenetv2_x2", "mobilenetv2_x4"}

    def test_backbone_curves_increase_with_cores(self, fig2):
        for curve in fig2["backbone"].values():
            assert len(curve) == len(FIG2_CORE_COUNTS)
            assert curve[-1] > curve[0]

    def test_x4_reaches_about_6_macs_per_cycle(self, fig2):
        """Fig. 2 (left): the x4 variant reaches ~6.5 MACs/cycle at 8 cores."""
        assert fig2["backbone"]["mobilenetv2_x4"][-1] == pytest.approx(6.5, rel=0.15)

    def test_x1_parallelizes_worse_than_x4(self, fig2):
        assert fig2["backbone"]["mobilenetv2"][-1] < \
            fig2["backbone"]["mobilenetv2_x4"][-1] * 0.6

    def test_fcr_is_memory_bound(self, fig2):
        """Fig. 2 (centre): the FCR stays below ~1 MAC/cycle at any core count."""
        fcr_curve = list(fig2["fcr"].values())[0]
        assert max(fcr_curve) < 1.0

    def test_finetune_scales_modestly(self, fig2):
        finetune_curve = list(fig2["finetune"].values())[0]
        backbone_curve = fig2["backbone"]["mobilenetv2_x4"]
        assert finetune_curve[-1] > finetune_curve[0]
        assert finetune_curve[-1] < backbone_curve[-1]
