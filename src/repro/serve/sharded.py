"""Multiprocessing worker pool executing micro-batches on model replicas.

:class:`ShardedEngine` owns N worker processes, each holding a model replica
restored from a picklable :class:`~repro.serve.snapshot.ModelSnapshot` (its
own compiled plans, its own buffer caches).  The transport is fully
per-worker: each shard has its own request queue, its own result queue, and
a pair of :class:`~repro.serve.transport.SlotRing` shared-memory rings for
tensor payloads — control queues carry only small pickled frames (tickets,
slot descriptors, error strings), while batch and result tensors cross the
process boundary as zero-copy NumPy views with explicit slot accounting.

Nothing is shared between shards, so no lock exists that a hard-killed
worker (OOM, SIGKILL) could die holding — a dead shard's failure domain is
exactly its own channels.  A liveness watchdog polls the worker processes;
when one dies it fails that shard's pending futures fast with
:class:`RemoteWorkerError`, reclaims the shard's ring slots, and routing
(least-loaded live worker) steers around the corpse — surviving shards keep
answering.

Dead shards are not just routed around: a **supervisor** respawns them.
The watchdog hands a failed shard to a supervisor thread that waits out a
capped exponential backoff (:class:`~repro.serve.backoff.BackoffSchedule`,
jittered so a correlated multi-shard crash does not respawn in lockstep),
re-creates the shard's queues and shared-memory rings from scratch (a
corpse may have died mid-write with its ring slots in arbitrary states),
spawns a fresh process from the same plan snapshot, resyncs it to the
*current* prototype version through the same version-gated path broadcasts
take, and only then rejoins it to least-loaded routing.  A worker that
keeps dying exhausts its crash-loop budget (``max_respawns`` within
``respawn_reset_s`` of uptime) and the shard degrades permanently — the
pre-supervisor behaviour: typed errors at the corpse, survivors serving.

The watchdog also escalates **hangs**: each worker stamps a heartbeat
counter into a shared value from a dedicated thread, so a shard that is
alive by ``is_alive()`` but frozen in practice (SIGSTOP, swap death, a
stuck syscall) is declared failed after ``hang_silence_s`` of heartbeat
silence, SIGKILLed, and handed to the same respawn path.  Hang detection
is opt-in (``hang_silence_s=None`` disables it): the right threshold is
workload-dependent, and a paused-on-purpose shard must not be shot by
default.

Workers default to the ``spawn`` start method: it exercises the snapshot's
picklability end-to-end (``fork`` would silently inherit live state) and
sidesteps fork-after-BLAS hazards.  BLAS threading inside each worker is
pinned to one thread by default so that process-level sharding, not library
threading, owns the parallelism — the saturation benchmark compares worker
counts under identical per-worker settings.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import queue as queue_module
import threading
import time
from concurrent.futures import Future, InvalidStateError
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

import numpy as np

from .backoff import BackoffSchedule
from .snapshot import ModelSnapshot, PrototypeState
from .transport import (
    DEFAULT_RING_SLOTS,
    DEFAULT_SLOT_BYTES,
    SlotRing,
    pack_payload,
    payload_trace,
    unpack_payload,
)
from .worker import worker_main

DEFAULT_NUM_WORKERS = 2
DEFAULT_TIMEOUT = 120.0
DEFAULT_START_METHOD = "spawn"

#: Default poll interval of the liveness watchdog (overridable per engine via
#: ``watchdog_interval_s``).  Bounds how long a dead shard's pending futures
#: can linger before failing with :class:`RemoteWorkerError` — milliseconds,
#: not the two-minute request timeout.
WATCHDOG_INTERVAL_S = 0.2

#: Default per-worker crash-loop budget: how many times the supervisor
#: respawns a shard (within one ``respawn_reset_s`` uptime window) before
#: giving up into degraded mode.  0 disables respawn entirely.
DEFAULT_MAX_RESPAWNS = 2

#: A worker that stays up this long has its crash-loop attempt counter
#: reset: only *rapid* death cycles count against the budget, a shard that
#: served for a minute and then hit a one-off OOM deserves a fresh budget.
DEFAULT_RESPAWN_RESET_S = 30.0

#: Poll interval of the supervisor thread waiting out respawn backoffs.
_SUPERVISOR_POLL_S = 0.02

#: Heartbeat-silence grace before the first stamp: a spawning worker pays
#: interpreter startup + replica restore before its heartbeat thread runs,
#: which must not read as a hang (the effective threshold is the larger of
#: this and ``hang_silence_s``).
_STARTUP_HEARTBEAT_GRACE_S = 10.0

#: Poll interval of the per-worker collector threads (they must notice
#: ``close()`` even when their worker will never answer again).
_COLLECT_POLL_S = 0.1

#: Environment knobs that cap BLAS/OpenMP threading inside worker processes.
_BLAS_ENV_VARS = ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
                  "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS",
                  "VECLIB_MAXIMUM_THREADS")


class RemoteWorkerError(RuntimeError):
    """An exception raised inside (or by the death of) a worker process."""


class WorkerDiedError(RemoteWorkerError):
    """The worker *process* backing a request is gone (crash, SIGKILL, torn
    channel) — as opposed to a worker-side exception forwarded through
    :class:`RemoteWorkerError`.  The distinction matters for retries: a dead
    shard's work can be re-dispatched to a survivor, while a genuine
    exception (bad payload) would fail identically anywhere."""


class EngineClosedError(RuntimeError):
    """The engine was closed; raised by new submits and used to fail any
    request still in flight at ``close()`` time, so callers never block on
    a closed pool."""


@contextmanager
def _blas_threads_env(threads: Optional[int]):
    """Temporarily pin BLAS thread env vars so started children inherit them."""
    if threads is None:
        yield
        return
    saved = {name: os.environ.get(name) for name in _BLAS_ENV_VARS}
    os.environ.update({name: str(threads) for name in _BLAS_ENV_VARS})
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


class ShardedEngine:
    """A pool of worker processes serving replicas of one model snapshot."""

    def __init__(self, snapshot: ModelSnapshot,
                 num_workers: int = DEFAULT_NUM_WORKERS,
                 start_method: str = DEFAULT_START_METHOD,
                 blas_threads_per_worker: Optional[int] = 1,
                 startup_timeout: float = DEFAULT_TIMEOUT,
                 use_shared_memory: bool = True,
                 ring_slots: int = DEFAULT_RING_SLOTS,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 watchdog_interval_s: float = WATCHDOG_INTERVAL_S,
                 max_respawns: int = DEFAULT_MAX_RESPAWNS,
                 respawn_backoff: Optional[BackoffSchedule] = None,
                 respawn_reset_s: float = DEFAULT_RESPAWN_RESET_S,
                 hang_silence_s: Optional[float] = None,
                 recovery_listener=None,
                 tracer=None, chaos=None):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if watchdog_interval_s <= 0:
            raise ValueError("watchdog_interval_s must be positive")
        if max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        if hang_silence_s is not None and hang_silence_s <= 0:
            raise ValueError("hang_silence_s must be positive (None to "
                             "disable hang detection)")
        self.snapshot = snapshot
        self.micro_batch = snapshot.micro_batch
        self.watchdog_interval_s = watchdog_interval_s
        self.max_respawns = max_respawns
        self.respawn_reset_s = respawn_reset_s
        self.hang_silence_s = hang_silence_s
        #: Backoff waited out between a shard's failure and its respawn.
        self.respawn_backoff = respawn_backoff if respawn_backoff is not None \
            else BackoffSchedule()
        #: Optional callable receiving one dict per recovery lifecycle event
        #: (``worker_failed`` / ``respawn_scheduled`` / ``hang_escalated`` /
        #: ``respawned`` / ``gave_up``) — the server wires its stats
        #: instruments here; exceptions it raises are swallowed.
        self._recovery_listener = recovery_listener
        #: Optional :class:`~repro.obs.trace.Tracer`: the adoption point for
        #: spans shipped back from workers, and the author of the synthetic
        #: ``worker.execute`` spans of requests whose worker died on them.
        self.tracer = tracer
        #: Optional fault-injection hook (see :mod:`repro.scenarios.chaos`):
        #: an object whose ``on_result(worker_index, item)`` may mutate or
        #: replace a result frame before the collector decodes it —
        #: modelling a shard that ships corrupted frames.  ``None`` (the
        #: default) costs one attribute check per result.
        self._chaos = chaos
        context = mp.get_context(start_method)
        # The supervisor re-creates a failed shard from scratch, so the
        # spawn-time configuration must outlive __init__.
        self._context = context
        self._use_shared_memory = use_shared_memory
        self._ring_slots = ring_slots
        self._slot_bytes = slot_bytes
        self._blas_threads = blas_threads_per_worker
        self._startup_timeout = startup_timeout
        self._request_queues = []
        self._result_queues = []
        self._request_rings: List[Optional[SlotRing]] = []
        self._result_rings: List[Optional[SlotRing]] = []
        self._processes = []
        #: Per-worker heartbeat counters (shared values stamped from a
        #: dedicated thread inside each worker; single writer, so no lock).
        self._heartbeats = []
        #: ticket -> (future, worker index); strictly per-worker bookkeeping
        #: so a dead shard's futures can be failed without touching the rest.
        self._pending: Dict[int, Tuple[Future, int]] = {}
        #: ticket -> (trace context, wall start) of traced submits, kept
        #: separate from ``_pending`` so the untraced bookkeeping is
        #: untouched; consumed on resolution or turned into a synthetic
        #: failed span when the ticket's worker dies.
        self._trace_ctx: Dict[int, Tuple[tuple, float]] = {}
        self._inflight = [0] * num_workers
        self._dead = [False] * num_workers
        #: A respawned shard is *resyncing* until it acked the current
        #: prototype version: not dead (targeted submits work — the resync
        #: itself uses them) but excluded from routing and broadcasts, so
        #: no client request can reach a replica with stale prototypes.
        self._resyncing = [False] * num_workers
        #: Shards whose crash-loop budget is exhausted (terminal).
        self._gave_up = [False] * num_workers
        self._respawn_attempts = [0] * num_workers
        self._restarts = [0] * num_workers
        now = time.monotonic()
        self._spawned_at = [now] * num_workers
        #: First-failure timestamp per shard, cleared on successful rejoin —
        #: recovery latency spans detection to serving again, across every
        #: backoff + retry in between.
        self._failed_at: List[Optional[float]] = [None] * num_workers
        #: Last observed heartbeat stamp and when it last changed.
        self._hb_seen: List[Tuple[int, float]] = [(0, now)] * num_workers
        #: worker index -> monotonic due time of its scheduled respawn.
        self._respawn_due: Dict[int, float] = {}
        #: Newest prototype state pushed through :meth:`set_prototypes`; the
        #: supervisor resyncs a respawned shard from it.  Updated under
        #: ``_lock`` *before* the broadcast, so a respawn racing a broadcast
        #: either sees the new state here or is live in time to receive the
        #: broadcast itself (never neither).
        self._latest_prototypes: Optional[PrototypeState] = snapshot.prototypes
        self._lock = threading.Lock()
        self._tickets = itertools.count()
        self._round_robin = itertools.count()
        self._closed = False
        self._stop = threading.Event()
        with _blas_threads_env(blas_threads_per_worker):
            for worker_id in range(num_workers):
                request_ring = SlotRing(ring_slots, slot_bytes) \
                    if use_shared_memory else None
                result_ring = SlotRing(ring_slots, slot_bytes) \
                    if use_shared_memory else None
                (request_queue, result_queue, heartbeat,
                 process) = self._make_worker(worker_id, request_ring,
                                              result_ring)
                self._request_queues.append(request_queue)
                self._result_queues.append(result_queue)
                self._request_rings.append(request_ring)
                self._result_rings.append(result_ring)
                self._heartbeats.append(heartbeat)
                self._processes.append(process)
        self._collectors = []
        for worker_id in range(num_workers):
            self._collectors.append(self._start_collector(worker_id))
        self._watchdog = threading.Thread(target=self._watch,
                                          name="repro-serve-watchdog",
                                          daemon=True)
        self._watchdog.start()
        self._supervisor = threading.Thread(target=self._supervise,
                                            name="repro-serve-supervisor",
                                            daemon=True)
        self._supervisor.start()
        # Block until every worker finished importing + restoring its replica
        # (spawn pays the interpreter startup here, not on the first request).
        # A worker that dies during startup fails its ping fast through the
        # watchdog instead of running out the timeout; a pool that cannot
        # bring up *every* worker is a startup failure, not a degraded pool.
        self.broadcast("ping", timeout=startup_timeout, require_all=True)

    # ------------------------------------------------------------------
    # Worker construction (shared by __init__ and the supervisor)
    # ------------------------------------------------------------------
    def _make_worker(self, worker_id: int, request_ring: Optional[SlotRing],
                     result_ring: Optional[SlotRing]):
        """Spawn one worker process with fresh control queues and heartbeat.

        The caller owns placing the returned channel objects into the
        per-worker tables (append at startup, in-place replace on respawn).
        """
        request_queue = self._context.Queue()
        result_queue = self._context.Queue()
        # 'Q' (unsigned 64-bit) never wraps at ~20 stamps/s; lock-free is
        # safe because the worker's heartbeat thread is the only writer.
        heartbeat = self._context.Value("Q", 0, lock=False)
        process = self._context.Process(
            target=worker_main,
            args=(worker_id, self.snapshot, request_queue, result_queue,
                  request_ring.spec() if request_ring else None,
                  result_ring.spec() if result_ring else None,
                  heartbeat),
            daemon=True, name=f"repro-serve-worker-{worker_id}")
        process.start()
        return request_queue, result_queue, heartbeat, process

    def _start_collector(self, worker_id: int) -> threading.Thread:
        collector = threading.Thread(
            target=self._collect, args=(worker_id,),
            name=f"repro-serve-collector-{worker_id}", daemon=True)
        collector.start()
        return collector

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self._processes)

    @property
    def worker_pids(self) -> List[int]:
        """OS pids of the worker processes (the chaos layer's signal
        targets; a dead worker keeps reporting its last pid)."""
        return [process.pid for process in self._processes]

    @property
    def live_workers(self) -> List[int]:
        """Indices of shards that are routable: alive by the watchdog and
        not mid-resync after a respawn (a resyncing replica exists but must
        not answer client traffic until it holds the current prototypes)."""
        with self._lock:
            return [index for index in range(self.num_workers)
                    if not self._dead[index] and not self._resyncing[index]]

    @property
    def restart_counts(self) -> List[int]:
        """Completed supervisor respawns (rejoined and serving) per shard."""
        with self._lock:
            return list(self._restarts)

    @property
    def gave_up_workers(self) -> List[int]:
        """Shards whose crash-loop budget is exhausted — permanently
        degraded; the supervisor will not touch them again."""
        with self._lock:
            return [index for index in range(self.num_workers)
                    if self._gave_up[index]]

    def inflight_per_worker(self) -> List[int]:
        """Outstanding (submitted, unresolved) work items per shard."""
        with self._lock:
            return list(self._inflight)

    def min_live_inflight(self) -> int:
        """Smallest in-flight count among live shards (0 when none live —
        the next dispatch then fails with the watchdog's typed error
        instead of waiting forever for budget that cannot free up)."""
        with self._lock:
            counts = [self._inflight[index]
                      for index in range(self.num_workers)
                      if not self._dead[index] and not self._resyncing[index]]
        return min(counts) if counts else 0

    # ------------------------------------------------------------------
    # Pending-table bookkeeping (all under self._lock)
    # ------------------------------------------------------------------
    def _register_locked(self, future: Future, index: int) -> int:
        ticket = next(self._tickets)
        self._pending[ticket] = (future, index)
        self._inflight[index] += 1
        return ticket

    def _pop_ticket(self, ticket: int) -> Optional[Future]:
        with self._lock:
            entry = self._pending.pop(ticket, None)
            self._trace_ctx.pop(ticket, None)
            if entry is None:
                return None
            future, index = entry
            self._inflight[index] -= 1
        return future

    def _discard_future(self, future: Future) -> None:
        """Drop one future from the pending table by identity (a future
        that will never resolve — e.g. its worker died behind a stats
        deadline — must not linger until ``close()``)."""
        with self._lock:
            for ticket, (pending, index) in list(self._pending.items()):
                if pending is future:
                    del self._pending[ticket]
                    self._trace_ctx.pop(ticket, None)
                    self._inflight[index] -= 1
                    break

    # ------------------------------------------------------------------
    # Collector / watchdog threads
    # ------------------------------------------------------------------
    def _collect(self, index: int) -> None:
        """Drain one worker's result queue into its pending futures.

        Strictly per-worker: a shard that dies mid-write can corrupt or
        silence only its *own* channel; every other collector keeps
        resolving its shard's replies.
        """
        result_queue = self._result_queues[index]
        ring = self._result_rings[index]
        while not self._stop.is_set():
            try:
                item = result_queue.get(timeout=_COLLECT_POLL_S)
            except queue_module.Empty:
                continue
            except (EOFError, OSError, ValueError):
                # Channel torn down under us: engine close, or the
                # supervisor retiring this shard's channels before its
                # replacement (ValueError is what a closed Queue raises).
                break
            if self._chaos is not None:
                # Fault injection: the hook may return a corrupted frame
                # (modelling a shard shipping garbage); a hook that raises
                # is treated as a no-op so the collector never dies to it.
                try:
                    item = self._chaos.on_result(index, item)
                except Exception:  # noqa: BLE001 - chaos must not kill us
                    pass
            try:
                ticket, worker_id, ok, packed = item
            except (TypeError, ValueError):  # truncated frame from a corpse
                continue
            future = self._pop_ticket(ticket)
            if future is None:               # e.g. the shutdown ack
                continue
            # Spans the worker finished for this item ride the result frame;
            # adopt them into the coordinator's export stream so one file
            # holds the whole cross-process trace.
            if self.tracer is not None:
                shipped = payload_trace(packed)
                if isinstance(shipped, dict):
                    self.tracer.adopt(shipped.get("spans", ()))
            # The collector must survive anything a caller did to the future
            # (a cancelled/raced future must not kill the loop and hang every
            # later request on this shard).
            try:
                if ok:
                    # Copy-out + slot free happen here, in one place, so the
                    # caller's future owns plain arrays with no lifetime tie
                    # to the ring.
                    payload, _ = unpack_payload(ring, packed, copy=True)
                    future.set_result(payload)
                else:
                    payload, _ = unpack_payload(ring, packed, copy=True)
                    future.set_exception(
                        RemoteWorkerError(f"worker {worker_id}: {payload}"))
            except InvalidStateError:
                pass
            except Exception as exc:  # noqa: BLE001 - defensive: bad frame
                try:
                    future.set_exception(RemoteWorkerError(
                        f"worker {worker_id}: undecodable result "
                        f"({type(exc).__name__}: {exc})"))
                except InvalidStateError:
                    pass

    def _watch(self) -> None:
        """Liveness watchdog: fail a dead shard's futures fast, reclaim its
        transport slots, escalate heartbeat-silent shards, and hand every
        failure to the supervisor for a backed-off respawn."""
        while not self._stop.wait(self.watchdog_interval_s):
            if self._closed:
                return
            # Snapshot: the supervisor replaces process handles in place.
            for index, process in list(enumerate(self._processes)):
                with self._lock:
                    dead = self._dead[index]
                if dead:
                    continue
                if not process.is_alive():
                    self._fail_worker(
                        index,
                        f"worker {index} process died "
                        f"(exit code {process.exitcode})")
                    continue
                self._check_heartbeat(index, process)

    def _check_heartbeat(self, index: int, process) -> None:
        """Track a shard's heartbeat; with ``hang_silence_s`` set, escalate
        one that is alive by ``is_alive()`` but whose heartbeat stopped
        advancing: SIGKILL it (delivered even to a SIGSTOPped process) and
        fail it into the normal respawn path."""
        heartbeat = self._heartbeats[index]
        if heartbeat is None:  # pragma: no cover - heartbeats always exist
            return
        now = time.monotonic()
        stamp = int(heartbeat.value)
        last_stamp, changed_at = self._hb_seen[index]
        if stamp != last_stamp:
            self._hb_seen[index] = (stamp, now)
            return
        if self.hang_silence_s is None:
            return
        # Before the first stamp the worker is still importing/restoring its
        # replica — give it the startup grace, not the steady-state budget.
        threshold = self.hang_silence_s if stamp else \
            max(self.hang_silence_s, _STARTUP_HEARTBEAT_GRACE_S)
        silence = now - changed_at
        if silence <= threshold:
            return
        self._emit({"event": "hang_escalated", "worker": index,
                    "silence_s": silence})
        try:
            process.kill()
        except Exception:  # noqa: BLE001 - already exiting is fine
            pass
        self._fail_worker(
            index,
            f"worker {index} heartbeat silent for {silence:.2f}s "
            f"(> {threshold:g}s): alive by is_alive() but not making "
            f"progress; escalated with SIGKILL")

    def _emit(self, event: dict) -> None:
        """Deliver one recovery lifecycle event to the listener, which must
        never be able to take down a watchdog/supervisor thread."""
        listener = self._recovery_listener
        if listener is None:
            return
        try:
            listener(dict(event))
        except Exception:  # noqa: BLE001 - listener bugs stay theirs
            pass

    def _fail_worker(self, index: int, reason: str) -> None:
        with self._lock:
            if self._dead[index]:
                return
            self._dead[index] = True
            self._resyncing[index] = False
            if self._failed_at[index] is None:
                # First failure of this outage: recovery latency is measured
                # from here to the successful rejoin, across every backoff
                # and failed retry in between.
                self._failed_at[index] = time.monotonic()
            doomed = [(ticket, future) for ticket, (future, owner)
                      in self._pending.items() if owner == index]
            doomed_traces = []
            for ticket, _ in doomed:
                del self._pending[ticket]
                trace = self._trace_ctx.pop(ticket, None)
                if trace is not None:
                    doomed_traces.append(trace)
            self._inflight[index] = 0
        # A worker that died mid-request can never report its span; close
        # the trace tree anyway with a synthetic ``worker.execute`` marked
        # failed, spanning submit-to-death.
        if self.tracer is not None:
            for ctx, started in doomed_traces:
                self.tracer.record_span(
                    "worker.execute", ctx=ctx, start_s=started,
                    status="failed", error=reason,
                    attrs={"worker": index, "synthetic": True})
        # The dead worker was the only reader of its request ring and the
        # only writer of its result ring: with it gone, both sides' slots
        # are reclaimed wholesale instead of leaking for the engine's life.
        for ring in (self._request_rings[index], self._result_rings[index]):
            if ring is not None:
                ring.reclaim_all()
        error = WorkerDiedError(reason)
        for _, future in doomed:
            try:
                future.set_exception(error)
            except InvalidStateError:
                pass
        self._emit({"event": "worker_failed", "worker": index,
                    "reason": reason})
        self._schedule_respawn(index)

    # ------------------------------------------------------------------
    # Supervisor: backed-off respawn of failed shards
    # ------------------------------------------------------------------
    def _schedule_respawn(self, index: int) -> None:
        """Charge one crash against the shard's budget and either queue a
        backed-off respawn or give the shard up for good."""
        if self._closed or self._stop.is_set():
            return
        with self._lock:
            if self._gave_up[index]:
                return
            now = time.monotonic()
            if now - self._spawned_at[index] > self.respawn_reset_s:
                # The previous incarnation was stably up: this is a fresh
                # outage, not the next lap of a crash loop.
                self._respawn_attempts[index] = 0
            self._respawn_attempts[index] += 1
            attempt = self._respawn_attempts[index]
            if attempt > self.max_respawns:
                self._gave_up[index] = True
                self._failed_at[index] = None
                gave_up = True
                delay = 0.0
            else:
                gave_up = False
                delay = self.respawn_backoff.delay(attempt)
                self._respawn_due[index] = now + delay
        if gave_up:
            self._emit({"event": "gave_up", "worker": index,
                        "attempts": attempt - 1,
                        "max_respawns": self.max_respawns})
        else:
            self._emit({"event": "respawn_scheduled", "worker": index,
                        "attempt": attempt, "delay_s": delay})

    def _supervise(self) -> None:
        """Supervisor thread: run due respawns (serially — respawning is
        rare and a spawn is expensive; one at a time keeps the bookkeeping
        trivially race-free against itself)."""
        while not self._stop.wait(_SUPERVISOR_POLL_S):
            if self._closed:
                return
            now = time.monotonic()
            with self._lock:
                due = [index for index, when in self._respawn_due.items()
                       if when <= now]
                for index in due:
                    del self._respawn_due[index]
            for index in due:
                self._respawn(index)

    def _respawn(self, index: int) -> None:
        """Replace a dead shard: fresh channels, fresh rings, fresh process,
        resynced state — then rejoin it to routing.

        Nothing of the corpse is reused.  Its queues may hold torn frames,
        its rings may have slots claimed by a write that never finished, and
        its kernel mappings pin the old segments; teardown + re-create is
        both simpler and the only defensible correctness story.
        """
        if self._closed or self._stop.is_set():
            return
        with self._lock:
            if self._gave_up[index] or not self._dead[index]:
                return
            attempt = self._respawn_attempts[index]
        old_process = self._processes[index]
        old_process.join(timeout=5.0)
        if old_process.is_alive():  # pragma: no cover - SIGKILL straggler
            old_process.kill()
            old_process.join(timeout=5.0)
        # Closing the old queues pops the shard's collector thread out of
        # its blocking get (OSError) — the new incarnation gets its own.
        for old_queue in (self._request_queues[index],
                          self._result_queues[index]):
            try:
                old_queue.close()
                old_queue.cancel_join_thread()
            except (OSError, ValueError):  # pragma: no cover - already down
                pass
        old_request_ring = self._request_rings[index]
        old_result_ring = self._result_rings[index]
        request_ring = old_request_ring.renew() \
            if old_request_ring is not None else None
        result_ring = old_result_ring.renew() \
            if old_result_ring is not None else None
        try:
            with _blas_threads_env(self._blas_threads):
                (request_queue, result_queue, heartbeat,
                 process) = self._make_worker(index, request_ring,
                                              result_ring)
        except Exception as exc:  # noqa: BLE001 - spawn itself failed
            self._schedule_respawn(index)
            self._emit({"event": "respawn_failed", "worker": index,
                        "attempt": attempt,
                        "reason": f"{type(exc).__name__}: {exc}"})
            return
        if self._closed:
            # close() raced us past the entry check: the fresh process must
            # not outlive the engine (close() iterated the old handle).
            process.kill()
            process.join(timeout=5.0)
            return
        self._request_queues[index] = request_queue
        self._result_queues[index] = result_queue
        self._request_rings[index] = request_ring
        self._result_rings[index] = result_ring
        self._heartbeats[index] = heartbeat
        self._processes[index] = process
        now = time.monotonic()
        with self._lock:
            self._spawned_at[index] = now
            self._hb_seen[index] = (0, now)
            # Resyncing: targeted submits (the resync itself) work, routing
            # and broadcasts skip the shard until it holds current state.
            self._resyncing[index] = True
            self._dead[index] = False
        self._collectors.append(self._start_collector(index))
        try:
            self.submit("ping", None, worker=index).result(
                timeout=self._startup_timeout)
            self._resync_prototypes(index)
        except Exception as exc:  # noqa: BLE001 - died again during resync
            reason = (f"worker {index} respawn failed during resync "
                      f"({type(exc).__name__}: {exc})")
            with self._lock:
                needs_fail = not self._dead[index]
            if needs_fail:
                try:
                    process.kill()
                except Exception:  # noqa: BLE001
                    pass
                # Re-enters _schedule_respawn: the budget, not recursion
                # depth, bounds how often this can go around.
                self._fail_worker(index, reason)
            return
        with self._lock:
            self._restarts[index] += 1
            failed_at = self._failed_at[index]
            self._failed_at[index] = None
        latency = None if failed_at is None else time.monotonic() - failed_at
        self._emit({"event": "respawned", "worker": index,
                    "attempt": attempt, "recovery_latency_s": latency})

    def _resync_prototypes(self, index: int) -> None:
        """Bring a respawned shard to the *current* prototype version, then
        mark it live.

        The loop closes the respawn/broadcast race: a concurrent
        :meth:`set_prototypes` updates ``_latest_prototypes`` under the lock
        *before* snapshotting the live set.  Either it runs before our
        re-read (we send the newer state ourselves) or after we flipped
        ``_resyncing`` off under the same lock (the broadcast reaches the
        shard directly).  A version acked below the latest re-sends.
        """
        while True:
            with self._lock:
                state = self._latest_prototypes
            if state is None:
                with self._lock:
                    self._resyncing[index] = False
                return
            self.submit("set_prototypes", state, worker=index).result(
                timeout=self._startup_timeout)
            with self._lock:
                if (self._latest_prototypes is None
                        or self._latest_prototypes.version == state.version):
                    self._resyncing[index] = False
                    return

    # ------------------------------------------------------------------
    def submit(self, kind: str, payload=None,
               worker: Optional[int] = None,
               trace_ctx: Optional[tuple] = None) -> Future:
        """Enqueue one work item; returns a future for its result.

        With no explicit ``worker``, the item is routed to the live shard
        with the fewest outstanding items (ties broken round-robin), so a
        dead shard is simply never chosen.  Targeting a dead shard
        explicitly raises :class:`RemoteWorkerError` immediately.

        ``trace_ctx`` — a ``(trace_id, span_id)`` pair of the sampled parent
        span — rides the request's control frame to the worker, whose
        execution spans come back attached to the result frame.  ``None``
        (the overwhelmingly common case) leaves the frame bit-identical to
        the pre-trace format.
        """
        if self._closed:
            raise EngineClosedError("engine is closed")
        future: Future = Future()
        # Mark the future running immediately: cancel() then always returns
        # False, so the collector's set_result cannot race a cancellation.
        future.set_running_or_notify_cancel()
        with self._lock:
            if worker is not None:
                index = worker
                if self._dead[index]:
                    raise WorkerDiedError(f"worker {index} is dead")
            else:
                live = [i for i in range(self.num_workers)
                        if not self._dead[i] and not self._resyncing[i]]
                if not live:
                    raise RemoteWorkerError("no live workers left in the "
                                            "pool")
                offset = next(self._round_robin)
                index = min(
                    live, key=lambda i: (self._inflight[i],
                                         (i - offset) % self.num_workers))
            ticket = self._register_locked(future, index)
            if trace_ctx is not None:
                self._trace_ctx[ticket] = (tuple(trace_ctx), time.time())
        packed = pack_payload(self._request_rings[index], payload,
                              trace=tuple(trace_ctx)
                              if trace_ctx is not None else None)
        try:
            self._request_queues[index].put((kind, ticket, packed))
        except (OSError, ValueError) as exc:
            if self._pop_ticket(ticket) is not None:
                future.set_exception(WorkerDiedError(
                    f"worker {index}: request channel closed ({exc})"))
            return future
        # The watchdog may have declared the shard dead between routing and
        # the queue put; its sweep can miss a ticket registered after it ran,
        # so re-check and fail the straggler here instead of leaking it.
        with self._lock:
            died = self._dead[index]
        if died and self._pop_ticket(ticket) is not None:
            try:
                future.set_exception(
                    WorkerDiedError(f"worker {index} is dead"))
            except InvalidStateError:
                pass
        return future

    def scatter(self, kind: str, images: np.ndarray,
                timeout: float = DEFAULT_TIMEOUT) -> np.ndarray:
        """Split ``images`` into micro-batches, spread them over the live
        shards, and reassemble the results in submission order.

        The chunking replicates :meth:`InferenceEngine.run` exactly (same
        ``micro_batch`` boundaries), so per-chunk results are bit-identical
        to the single-process engine's regardless of which shard — or how
        many shards — served each chunk.

        ``timeout`` is one *shared* deadline for the whole batch, not a
        per-chunk budget: the old per-chunk ``future.result(timeout=...)``
        let an N-chunk batch over a wedged shard wait up to N x timeout.
        A chunk whose shard *dies* mid-flight (:class:`WorkerDiedError`,
        never a worker-side exception) is re-dispatched to a surviving
        shard instead of failing the whole batch — results stay
        bit-identical because any shard computes the same chunk bits.
        """
        images = np.asarray(images, dtype=np.float32)
        if images.ndim == 3:
            images = images[None]
        if images.shape[0] == 0:
            raise ValueError("cannot scatter an empty batch")
        deadline = time.monotonic() + timeout
        chunks = [np.ascontiguousarray(images[start:start + self.micro_batch])
                  for start in range(0, images.shape[0], self.micro_batch)]
        futures = [self.submit(kind, chunk) for chunk in chunks]
        outputs: List[Optional[np.ndarray]] = [None] * len(chunks)
        for position, future in enumerate(futures):
            redispatches = 0
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"scatter({kind!r}) exceeded its shared {timeout:g}s "
                        f"deadline with chunk {position}/{len(chunks)} "
                        f"unresolved")
                try:
                    outputs[position] = future.result(timeout=remaining)
                    break
                except WorkerDiedError:
                    # Every retry implies another dead shard, so the retry
                    # count is naturally bounded by the pool size; the
                    # explicit cap guards against a miscounting bug turning
                    # into an infinite loop.
                    redispatches += 1
                    if redispatches > self.num_workers:
                        raise
                    # submit raises RemoteWorkerError("no live workers...")
                    # once the whole pool is gone.
                    future = self.submit(kind, chunks[position])
        return outputs[0] if len(outputs) == 1 else np.concatenate(outputs)

    def broadcast(self, kind: str, payload=None,
                  timeout: float = DEFAULT_TIMEOUT,
                  require_all: bool = False) -> Dict[int, object]:
        """Send one work item to every *live* worker under one shared
        deadline; returns ``{shard_index: result}`` for the shards that
        answered.

        A shard that dies between the liveness snapshot and its reply — or
        that never answers within the deadline — is simply omitted from the
        result instead of failing the whole broadcast, so one corpse cannot
        wedge e.g. a prototype sync for every healthy shard.  The mapping
        keys report exactly which shards answered.  Raises
        :class:`RemoteWorkerError` only when *no* shard answered, or on the
        first failure when ``require_all`` is set (startup, where a pool
        missing a worker is a failure, not a degraded pool).
        """
        indices = self.live_workers
        if not indices:
            raise RemoteWorkerError("no live workers left in the pool")
        deadline = time.monotonic() + timeout
        futures: Dict[int, Future] = {}
        failures: Dict[int, str] = {}
        for index in indices:
            try:
                futures[index] = self.submit(kind, payload, worker=index)
            except RemoteWorkerError as exc:   # died since the snapshot
                if require_all:
                    raise
                failures[index] = f"{type(exc).__name__}: {exc}"
        results: Dict[int, object] = {}
        for index, future in futures.items():
            remaining = max(0.0, deadline - time.monotonic())
            try:
                results[index] = future.result(timeout=remaining)
            except (RemoteWorkerError, TimeoutError) as exc:
                if require_all:
                    raise
                # The future is deliberately left pending on a timeout: a
                # slow-but-alive shard still applies the (FIFO-queued) item
                # when it gets there, and the watchdog or close() fails the
                # future if the shard is actually gone.
                failures[index] = f"{type(exc).__name__}: {exc}"
        if not results:
            raise RemoteWorkerError(
                f"broadcast {kind!r} reached no shard: {failures}")
        return results

    def set_prototypes(self, state: PrototypeState,
                       timeout: float = DEFAULT_TIMEOUT) -> Dict[int, int]:
        """Broadcast a prototype state; returns ``{shard: acked version}``
        for every shard that answered (see :meth:`broadcast` — a shard
        dying mid-broadcast is omitted, not fatal, so ``sync_prototypes``
        during a ``learn_class`` storm can never wedge serving).

        Request queues are FIFO per worker, so every answering shard has
        executed all previously enqueued items and every later item sees
        the new prototypes.  Prototype states are control frames: they
        cross as pickle, never through the tensor rings.

        The state is recorded as the pool's latest *before* broadcasting
        (under the engine lock): a shard the supervisor is resyncing right
        now is excluded from the broadcast's live set, and the resync loop
        re-reads the latest state until its acked version matches — so the
        shard rejoins with these prototypes either way.
        """
        with self._lock:
            if (self._latest_prototypes is None
                    or state.version >= self._latest_prototypes.version):
                self._latest_prototypes = state
        return self.broadcast("set_prototypes", state, timeout=timeout)

    def stats(self, timeout: float = DEFAULT_TIMEOUT) -> List[dict]:
        """Per-worker replica statistics, degraded per shard on failure.

        A worker that errors (``RemoteWorkerError``) or never answers (a
        dead or wedged process runs into the deadline) must not abort the
        whole stats collection — operators need the surviving shards'
        counters most exactly when one shard is down.  The failed shard is
        reported as a record carrying ``error`` (and ``alive`` from the
        process handle) instead of its counters.  ``timeout`` is a *shared*
        deadline across all shards, not per shard, so a pool with several
        wedged workers still answers within one budget; shards whose
        process is already gone are flagged immediately, without enqueueing
        work items no consumer will ever pop.

        With the per-worker transport a hard-killed worker can no longer
        wedge the survivors' replies (there is no shared write lock to die
        holding), so healthy shards answer at full fidelity even while a
        sibling is a corpse; the deadline remains the backstop for shards
        that are alive but buried behind a deep work queue.
        """
        deadline = time.monotonic() + timeout
        records: List[Optional[dict]] = [None] * self.num_workers
        futures = {}
        dead = set()
        with self._lock:
            dead = {index for index in range(self.num_workers)
                    if self._dead[index]}
        for index in range(self.num_workers):
            if index in dead or not self._processes[index].is_alive():
                records[index] = {"worker_id": index,
                                  "error": "worker process is not alive",
                                  "alive": False}
            else:
                futures[index] = self.submit("stats", None, worker=index)
        for index, future in futures.items():
            try:
                remaining = max(0.0, deadline - time.monotonic())
                records[index] = future.result(timeout=remaining)
            except Exception as exc:  # noqa: BLE001 - degrade per shard
                records[index] = {
                    "worker_id": index,
                    "error": f"{type(exc).__name__}: {exc}",
                    "alive": self._processes[index].is_alive(),
                }
                # A future that will never resolve (dead worker) must not
                # linger in the pending table until close().
                self._discard_future(future)
        # Coordinator-side recovery annotations: visible on healthy and
        # degraded records alike, so operators can tell "this shard died
        # once and was respawned" from "this shard never blinked" — and the
        # heartbeat age doubles as the hang-detection signal surfaced.
        now = time.monotonic()
        with self._lock:
            recovery = [(self._restarts[i], self._gave_up[i],
                         self._resyncing[i], now - self._hb_seen[i][1])
                        for i in range(self.num_workers)]
        for index, record in enumerate(records):
            if isinstance(record, dict):
                restarts, gave_up, resyncing, hb_age = recovery[index]
                record["restarts"] = restarts
                record["gave_up"] = gave_up
                record["resyncing"] = resyncing
                record["heartbeat_age_s"] = hb_age
        return records

    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Shut down workers and the coordinator threads; idempotent.

        Any request still unresolved once the pool is down — queued behind
        a shutdown, or stranded by a terminated worker — is failed with
        :class:`EngineClosedError`, so no caller ever blocks on a closed
        engine.
        """
        if self._closed:
            return
        self._closed = True
        for index, request_queue in enumerate(self._request_queues):
            with self._lock:
                dead = self._dead[index]
            if dead:
                continue
            try:
                request_queue.put(("shutdown", -1,
                                   pack_payload(None, None)))
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._stop.set()
        for collector in self._collectors:
            collector.join(timeout=5.0)
        self._watchdog.join(timeout=5.0)
        with self._lock:
            self._respawn_due.clear()
            pending = [future for future, _ in self._pending.values()]
            self._pending.clear()
            self._trace_ctx.clear()
            self._inflight = [0] * self.num_workers
        error = EngineClosedError("engine closed with requests in flight")
        for future in pending:
            try:
                future.set_exception(error)
            except InvalidStateError:
                pass
        # Joined after the pending sweep: a supervisor blocked mid-resync on
        # a future is released by the sweep, not by a timeout.
        self._supervisor.join(timeout=5.0)
        for q in (*self._request_queues, *self._result_queues):
            q.close()
            q.cancel_join_thread()
        for ring in (*self._request_rings, *self._result_rings):
            if ring is not None:
                ring.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close(timeout=1.0)
        except Exception:
            pass
