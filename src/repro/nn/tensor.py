"""Reverse-mode automatic differentiation over NumPy arrays.

This module provides the :class:`Tensor` class used throughout the
reproduction.  A tensor wraps a ``numpy.ndarray`` and, when
``requires_grad=True``, records the operations applied to it so that
:meth:`Tensor.backward` can propagate gradients through the recorded graph.

The design follows the usual define-by-run pattern: every differentiable
operation is implemented as a :class:`Function` subclass whose ``forward``
produces the raw output array and whose ``backward`` maps the incoming
gradient to gradients for each tensor input.
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]

_grad_enabled = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _grad_enabled


@contextlib.contextmanager
def no_grad():
    """Context manager disabling gradient recording inside the block."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


@contextlib.contextmanager
def enable_grad():
    """Context manager re-enabling gradient recording inside the block."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = True
    try:
        yield
    finally:
        _grad_enabled = previous


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Broadcasting in the forward pass replicates values along dimensions of
    size one (or along leading dimensions that are missing); the matching
    backward operation therefore sums the gradient over those dimensions.
    """
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were of size one in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Function:
    """Base class for differentiable operations.

    Subclasses implement :meth:`forward` (working on raw ``ndarray`` inputs)
    and :meth:`backward` (mapping the output gradient to a tuple of input
    gradients aligned with the tensor inputs captured at ``apply`` time).
    """

    def __init__(self, *parents: "Tensor"):
        self.parents: Tuple[Tensor, ...] = parents
        self.saved: Tuple = ()

    def save_for_backward(self, *items) -> None:
        """Stash arrays or metadata needed by :meth:`backward`."""
        self.saved = items

    def forward(self, *args, **kwargs) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray):  # pragma: no cover
        raise NotImplementedError

    @classmethod
    def apply(cls, *args, **kwargs) -> "Tensor":
        """Run the operation, wiring the result into the autograd graph."""
        tensor_args = tuple(a for a in args if isinstance(a, Tensor))
        ctx = cls(*tensor_args)
        raw_args = [a.data if isinstance(a, Tensor) else a for a in args]
        out_data = ctx.forward(*raw_args, **kwargs)
        needs_grad = _grad_enabled and any(t.requires_grad for t in tensor_args)
        out = Tensor(out_data, requires_grad=needs_grad)
        if needs_grad:
            out._ctx = ctx
        return out


class Tensor:
    """A NumPy-backed tensor with reverse-mode autodiff support."""

    __slots__ = ("data", "grad", "requires_grad", "_ctx", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None):
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if not np.issubdtype(array.dtype, np.floating):
            array = array.astype(np.float32)
        self.data: np.ndarray = array
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._ctx: Optional[Function] = None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def astype(self, dtype) -> "Tensor":
        return Tensor(self.data.astype(dtype), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Autograd driver
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()

        def build(node: "Tensor") -> None:
            if id(node) in visited or node._ctx is None:
                return
            visited.add(id(node))
            for parent in node._ctx.parents:
                build(parent)
            topo.append(node)

        build(self)

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._ctx is None:
                continue
            input_grads = node._ctx.backward(node_grad)
            if not isinstance(input_grads, tuple):
                input_grads = (input_grads,)
            for parent, parent_grad in zip(node._ctx.parents, input_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                parent_grad = np.asarray(parent_grad)
                if parent._ctx is None:
                    # Leaf tensor: accumulate into .grad
                    if parent.grad is None:
                        parent.grad = parent_grad.astype(parent.data.dtype, copy=True)
                    else:
                        parent.grad = parent.grad + parent_grad
                else:
                    key = id(parent)
                    if key in grads:
                        grads[key] = grads[key] + parent_grad
                    else:
                        grads[key] = parent_grad
        # Store the gradient on self as well when it is a leaf-like root.
        if self._ctx is None:
            if self.grad is None:
                self.grad = grad.copy()
            else:
                self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Operator overloads (implemented in repro.nn.ops; attached lazily)
    # ------------------------------------------------------------------
    def _binary(self, other, fn):
        other = other if isinstance(other, Tensor) else Tensor(np.asarray(other, dtype=self.data.dtype))
        return fn.apply(self, other)

    def __add__(self, other):
        from . import ops
        return self._binary(other, ops.Add)

    def __radd__(self, other):
        return self.__add__(other)

    def __sub__(self, other):
        from . import ops
        return self._binary(other, ops.Sub)

    def __rsub__(self, other):
        from . import ops
        other_t = other if isinstance(other, Tensor) else Tensor(np.asarray(other, dtype=self.data.dtype))
        return ops.Sub.apply(other_t, self)

    def __mul__(self, other):
        from . import ops
        return self._binary(other, ops.Mul)

    def __rmul__(self, other):
        return self.__mul__(other)

    def __truediv__(self, other):
        from . import ops
        return self._binary(other, ops.Div)

    def __rtruediv__(self, other):
        from . import ops
        other_t = other if isinstance(other, Tensor) else Tensor(np.asarray(other, dtype=self.data.dtype))
        return ops.Div.apply(other_t, self)

    def __neg__(self):
        from . import ops
        return ops.Neg.apply(self)

    def __pow__(self, exponent):
        from . import ops
        return ops.Pow.apply(self, float(exponent))

    def __matmul__(self, other):
        from . import ops
        return self._binary(other, ops.MatMul)

    def matmul(self, other):
        return self.__matmul__(other)

    def __getitem__(self, index):
        from . import ops
        return ops.Slice.apply(self, index)

    # Reductions / shape ops -------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        from . import ops
        return ops.Sum.apply(self, axis, keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from . import ops
        return ops.Mean.apply(self, axis, keepdims)

    def max(self, axis=None, keepdims: bool = False):
        from . import ops
        return ops.Max.apply(self, axis, keepdims)

    def reshape(self, *shape):
        from . import ops
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.Reshape.apply(self, shape)

    def transpose(self, *axes):
        from . import ops
        if len(axes) == 0:
            axes = None
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return ops.Transpose.apply(self, axes)

    @property
    def T(self):
        return self.transpose()

    def flatten(self, start_dim: int = 0):
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(new_shape)

    def exp(self):
        from . import ops
        return ops.Exp.apply(self)

    def log(self):
        from . import ops
        return ops.Log.apply(self)

    def sqrt(self):
        from . import ops
        return ops.Sqrt.apply(self)

    def abs(self):
        from . import ops
        return ops.Abs.apply(self)

    def clip(self, low: float, high: float):
        from . import ops
        return ops.Clip.apply(self, low, high)

    def relu(self):
        from . import ops
        return ops.ReLU.apply(self)

    # Comparison helpers return plain arrays (not differentiable) ------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a :class:`Tensor` (convenience constructor)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)


def randn(*shape, requires_grad: bool = False, rng: Optional[np.random.Generator] = None,
          scale: float = 1.0, dtype=np.float32) -> Tensor:
    generator = rng if rng is not None else np.random.default_rng()
    return Tensor(generator.standard_normal(shape).astype(dtype) * scale,
                  requires_grad=requires_grad)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    from . import ops
    tensors = list(tensors)
    return ops.Stack.apply(*tensors, axis=axis)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    from . import ops
    tensors = list(tensors)
    return ops.Concat.apply(*tensors, axis=axis)
