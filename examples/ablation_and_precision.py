#!/usr/bin/env python3
"""Reproduce the paper's analysis experiments: ablation and EM precision.

Part 1 — Table III-style ablation: toggle augmentation (AG), orthogonality
regularization (OR), multi-margin metalearning (MM), cross-entropy
metalearning (CE) and fine-tuning (FT) on a small synthetic protocol and
compare session-0 / final-session / average accuracy.

Part 2 — Fig. 3-style precision sweep: learn the full protocol once, then
requantize the stored prototypes from 32 bits down to 1 bit and watch the
accuracy stay flat until very low precision while the memory shrinks.

Run:  python examples/ablation_and_precision.py [--epochs 8]
"""

import argparse

from repro.core import (
    MetalearnConfig,
    OFSCIL,
    OFSCILConfig,
    PipelineConfig,
    PretrainConfig,
    TABLE3_ROWS,
    format_ablation_table,
    metalearn,
    pretrain,
    run_ablation,
)
from repro.data import build_synthetic_fscil
from repro.quant import format_precision_table, prototype_precision_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backbone", default="mobilenetv2_x4_tiny")
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--metalearn-iters", type=int, default=10)
    parser.add_argument("--skip-ablation", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    benchmark = build_synthetic_fscil("test", seed=args.seed)

    if not args.skip_ablation:
        print("=== Part 1: ablation study (Table III) ===")
        base_config = PipelineConfig(
            backbone=args.backbone, profile="test",
            pretrain=PretrainConfig(epochs=args.epochs, batch_size=32,
                                    learning_rate=0.12, seed=args.seed),
            metalearn=MetalearnConfig(iterations=args.metalearn_iters, meta_shots=5,
                                      queries_per_class=2, seed=args.seed),
            seed=args.seed)
        rows = run_ablation(base_config, benchmark=benchmark, rows=TABLE3_ROWS)
        print(format_ablation_table(rows))

    print("\n=== Part 2: prototype precision sweep (Fig. 3) ===")
    model = OFSCIL.from_registry(args.backbone, OFSCILConfig(backbone=args.backbone),
                                 seed=args.seed)
    pretrain(model.backbone, model.fcr, benchmark.base_train,
             num_classes=benchmark.protocol.base_classes,
             config=PretrainConfig(epochs=args.epochs, batch_size=32,
                                   learning_rate=0.12, seed=args.seed))
    metalearn(model.backbone, model.fcr, benchmark.base_train,
              MetalearnConfig(iterations=args.metalearn_iters, meta_shots=5,
                              queries_per_class=2, seed=args.seed))
    # The sweep embeds every test image once through the batched runtime and
    # then requantizes only the stored prototypes per precision level.
    sweep = prototype_precision_sweep(model, benchmark)
    print(format_precision_table(sweep))
    print("\nAccuracy stays close to the float reference down to a few bits per "
          "prototype entry, while the explicit memory shrinks by >10x.")


if __name__ == "__main__":
    main()
