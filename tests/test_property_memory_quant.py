"""Property-based tests of the explicit memory, quantization and FSCIL splits."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import ExplicitMemory, quantize_prototype
from repro.data import build_protocol
from repro.quant import quantize_dequantize, scale_from_threshold, select_threshold

FEATURE_ELEMENTS = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                             allow_infinity=False, width=32)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float32, (5, 16), elements=FEATURE_ELEMENTS))
def test_em_prototype_is_mean_of_features(features):
    memory = ExplicitMemory(dim=16)
    memory.update_class(0, features)
    np.testing.assert_allclose(memory.prototype(0), features.mean(axis=0),
                               rtol=1e-4, atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float32, (3, 8), elements=FEATURE_ELEMENTS),
       hnp.arrays(np.float32, (4, 8), elements=FEATURE_ELEMENTS))
def test_em_incremental_update_equals_batch_update(first, second):
    incremental = ExplicitMemory(dim=8)
    incremental.update_class(0, first)
    incremental.update_class(0, second)
    batch = ExplicitMemory(dim=8)
    batch.update_class(0, np.concatenate([first, second]))
    np.testing.assert_allclose(incremental.prototype(0), batch.prototype(0),
                               rtol=1e-3, atol=1e-3)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float32, (20,),
                  elements=st.floats(min_value=-5, max_value=5, width=32,
                                     allow_nan=False)),
       st.integers(min_value=2, max_value=8))
def test_prototype_quantization_respects_bit_range(prototype, bits):
    quantized = quantize_prototype(prototype, bits=bits)
    limit = 2 ** (bits - 1)
    assert np.all(np.abs(quantized) <= limit)
    assert np.all(quantized == np.round(quantized))


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float32, (64,),
                  elements=st.floats(min_value=-4, max_value=4, width=32,
                                     allow_nan=False)),
       st.integers(min_value=4, max_value=8))
def test_quantize_dequantize_error_bounded_by_step(values, bits):
    threshold = max(float(np.max(np.abs(values))), 1e-3)
    reconstructed = quantize_dequantize(values, threshold, bits)
    step = scale_from_threshold(threshold, bits)
    assert np.max(np.abs(values - reconstructed)) <= step / 2 + 1e-6


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float32, (128,),
                  elements=st.floats(min_value=-2, max_value=2, width=32,
                                     allow_nan=False)))
def test_quantization_is_idempotent(values):
    threshold = select_threshold(values, bits=8)
    once = quantize_dequantize(values, threshold, 8)
    twice = quantize_dequantize(once, threshold, 8)
    # Re-quantizing an already-quantized tensor may only move values that sit
    # exactly on a rounding boundary of the float32 representation, i.e. by at
    # most one quantization step.
    step = scale_from_threshold(threshold, 8)
    assert np.max(np.abs(once - twice)) <= step + 1e-6


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=10),   # ways
       st.integers(min_value=1, max_value=8),    # shots
       st.integers(min_value=1, max_value=6),    # sessions
       st.integers(min_value=5, max_value=30))   # base classes
def test_fscil_protocol_invariants(ways, shots, sessions, base_classes):
    num_classes = base_classes + ways * sessions
    protocol = build_protocol("test", num_classes=num_classes,
                              base_classes=base_classes, ways=ways, shots=shots,
                              num_sessions=sessions)
    seen = set()
    for session in range(sessions + 1):
        classes = set(protocol.session_classes(session).tolist())
        # Sessions are disjoint and sized correctly.
        assert not (classes & seen)
        expected_size = base_classes if session == 0 else ways
        assert len(classes) == expected_size
        seen |= classes
        # seen_classes is the running union.
        assert set(protocol.seen_classes(session).tolist()) == seen
    assert seen == set(range(num_classes))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=8, max_value=512),
       st.sampled_from([1, 2, 3, 4, 8, 16, 32]))
def test_em_memory_footprint_scales_linearly(num_classes, dim, bits):
    memory = ExplicitMemory(dim=dim, bits=bits)
    footprint = memory.memory_bytes(num_classes)
    assert footprint == pytest.approx(num_classes * dim * bits / 8.0)
