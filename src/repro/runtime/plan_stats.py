"""Print optimizer + memory-plan statistics for a registry backbone.

CI runs this after the fast suite (``python -m repro.runtime.plan_stats``)
so plan-shape or memory-plan regressions — more steps, fewer fused
epilogues, more arena slots, a bigger peak — are visible in the job log of
every push, not only when a perf floor finally trips.
"""

from __future__ import annotations

import sys

import numpy as np

DEFAULT_BACKBONE = "mobilenetv2_x4_tiny"
WARMUP_SAMPLES = 8


def plan_stats(backbone: str = DEFAULT_BACKBONE) -> dict:
    """Compile the backbone, serve one batch, and report plan/arena stats."""
    from ..core import OFSCIL, OFSCILConfig
    from ..models import get_config

    model = OFSCIL.from_registry(backbone, OFSCILConfig(backbone=backbone),
                                 seed=0)
    predictor = model.runtime_predictor()
    size = get_config(backbone).input_size
    # One real batch materialises the recorded-shape memory plan.
    predictor.embed(np.zeros((WARMUP_SAMPLES, 3, size, size),
                             dtype=np.float32))
    engine = predictor.backbone_engine
    plan = engine.plan
    memory_plan = engine.memory_plan
    peak = memory_plan.peak_bytes(engine.micro_batch)
    unplanned = memory_plan.unplanned_bytes(engine.micro_batch)
    return {
        "backbone": backbone,
        "plan_steps": len(plan),
        "fused_steps": plan.num_fused(),
        "integer_steps": plan.num_integer(),
        "arena_slots": memory_plan.num_slots,
        "arena_peak_bytes": peak,
        "arena_unplanned_bytes": unplanned,
        "peak_reduction": round(1.0 - peak / unplanned, 3) if unplanned else 0.0,
        "micro_batch": engine.micro_batch,
        "num_threads": engine.num_threads,
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    backbone = argv[0] if argv else DEFAULT_BACKBONE
    stats = plan_stats(backbone)
    width = max(len(key) for key in stats)
    for key, value in stats.items():
        print(f"{key:<{width}}  {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
