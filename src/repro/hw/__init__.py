"""GAP9 MCU simulator: memory hierarchy, cycle model, power model, profiler."""

from .deploy import (
    DeploymentPlan,
    deploy_backbone,
    deploy_graph,
    fold_batchnorm,
    plan_layer_specs,
)
from .kernels import (
    GraphCost,
    LayerCost,
    graph_cycles,
    layer_cycles,
    per_core_throughput,
    row_parallel_utilization,
)
from .memory import (
    MemoryPlan,
    TensorPlacement,
    dma_cycles,
    layer_dma_cycles,
    plan_memory,
)
from .power import EnergyReport, PowerBreakdown, PowerModel, combine_reports
from .profiler import (
    FIG2_CORE_COUNTS,
    GAP9Profiler,
    PAPER_TABLE4_REFERENCE,
    format_table4,
)
from .soc import (
    OPERATING_POINTS,
    ComputeConfig,
    GAP9Config,
    MemoryConfig,
    OperatingPoint,
    PowerConfig,
    default_gap9,
)

__all__ = [
    "GAP9Config",
    "ComputeConfig",
    "MemoryConfig",
    "PowerConfig",
    "OperatingPoint",
    "OPERATING_POINTS",
    "default_gap9",
    "MemoryPlan",
    "TensorPlacement",
    "plan_memory",
    "dma_cycles",
    "layer_dma_cycles",
    "LayerCost",
    "GraphCost",
    "layer_cycles",
    "graph_cycles",
    "row_parallel_utilization",
    "per_core_throughput",
    "DeploymentPlan",
    "deploy_graph",
    "deploy_backbone",
    "fold_batchnorm",
    "plan_layer_specs",
    "PowerModel",
    "PowerBreakdown",
    "EnergyReport",
    "combine_reports",
    "GAP9Profiler",
    "PAPER_TABLE4_REFERENCE",
    "FIG2_CORE_COUNTS",
    "format_table4",
]
