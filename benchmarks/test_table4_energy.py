"""Table IV — execution time, power and energy per class on GAP9.

Regenerates every row of Table IV (FCR projection, backbone inference, EM
update, FCR fine-tuning, for the three MobileNetV2 variants) from the GAP9
simulator and compares against the paper's measurements.
"""

import pytest

from repro.hw import GAP9Profiler, PAPER_TABLE4_REFERENCE, format_table4
from repro.report import relative_error

# Full-scale benchmark reproduction: minutes of training; excluded from
# the default (fast) suite by the `slow` marker — run with `pytest -m slow`.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def profiler():
    return GAP9Profiler()


def test_table4_latency_power_energy(benchmark, profiler):
    rows = benchmark.pedantic(lambda: profiler.table4(), rounds=1, iterations=1)
    print("\nTable IV — time / power / energy per class (5-shot), GAP9 @ 240 MHz")
    print(format_table4(rows))

    for row in rows:
        reference = PAPER_TABLE4_REFERENCE[row.operation]
        paper = reference.get(row.backbone, reference.get("any"))
        # Latency and energy within 25% of the measured silicon numbers,
        # power within the 40-55 mW envelope.
        assert abs(relative_error(row.time_ms, paper["time_ms"])) < 0.25, row.operation
        assert abs(relative_error(row.energy_mj, paper["energy_mj"])) < 0.30, row.operation
        assert 38.0 < row.power_mw < 58.0


def test_table4_headline_12mj_per_class(profiler):
    """The title claim: learning a new class costs ~12 mJ (EM update, MobileNetV2)."""
    report = profiler.profile_em_update("mobilenetv2", shots=5)
    print(f"\nEM update on MobileNetV2: {report.energy_mj:.2f} mJ per class "
          f"({report.time_ms:.1f} ms @ {report.power_mw:.1f} mW) — paper: 11.35 mJ")
    assert 8.0 < report.energy_mj < 16.0


def test_batched_inference_amortizes_overheads(profiler):
    """Micro-batching (the repro.runtime deployment mode) must never cost
    more per sample than batch-1 inference, and the memory-bound MobileNetV2
    variants should see a tangible win from amortized weight streaming."""
    for backbone in ("mobilenetv2", "mobilenetv2_x2", "mobilenetv2_x4"):
        speedups = [profiler.batched_speedup(backbone, batch)
                    for batch in (2, 4, 8)]
        print(f"\n{backbone}: per-sample speedup at batch 2/4/8 = "
              + "/".join(f"{s:.2f}x" for s in speedups))
        assert all(s >= 1.0 for s in speedups)
        assert speedups == sorted(speedups)
    assert profiler.batched_speedup("mobilenetv2", 8) > 1.2


def test_table4_finetuning_cost_ratio(profiler):
    """Fine-tuning draws roughly 25-30x the energy of the plain EM update."""
    em = profiler.profile_em_update("mobilenetv2_x4", shots=5)
    ft = profiler.profile_fcr_finetune("mobilenetv2_x4", epochs=100)
    ratio = ft.energy_mj / em.energy_mj
    paper_ratio = 321.75 / 22.75
    print(f"\nFine-tune / EM-update energy ratio: {ratio:.1f} (paper {paper_ratio:.1f})")
    assert ratio == pytest.approx(paper_ratio, rel=0.5)
