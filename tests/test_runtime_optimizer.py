"""Plan optimizer conformance: pass-by-pass parity, arena planning, threads.

The optimizer's contract is absolute: every pass — dead-step elimination,
quantize-chain fusion, arena-planned execution, thread-pool chunking — must
reproduce the unoptimized plan's output *bit for bit*.  Float32 plans are
compared optimized-vs-raw on the same machine (same kernels, same BLAS, so
equality is exact); int8 plans are additionally pinned against the committed
golden fixture after each individual pass.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

from repro import nn
from repro.core import OFSCIL, OFSCILConfig
from repro.models.mobilenetv2 import ConvBNReLU
from repro.runtime import (
    BufferCache,
    InferenceEngine,
    compile_backbone,
    compile_module,
    eliminate_common_subexpressions,
    eliminate_dead_steps,
    fold_identities,
    fuse_quantize_chains,
    optimize_plan,
    superfuse_residual_adds,
)
from repro.runtime import kernels
from repro.runtime.plan import InferencePlan, Step
from repro.serve import snapshot_model

sys.path.insert(0, str(Path(__file__).resolve().parent))
from int8_fixtures import (  # noqa: E402
    BACKBONE,
    RESNET_BACKBONE,
    build_quantized_model,
    load_golden,
)

TINY_BACKBONES = ("mobilenetv2_x4_tiny", "mobilenetv2_tiny", "resnet12_tiny",
                  "resnet20_tiny")

#: Families the int8 optimizer conformance parametrizes over (the committed
#: golden fixtures pin the exact bits per family).
INT8_BACKBONES = (BACKBONE, RESNET_BACKBONE)


def make_model(backbone: str, seed: int = 0) -> OFSCIL:
    model = OFSCIL.from_registry(backbone, OFSCILConfig(backbone=backbone),
                                 seed=seed)
    model.backbone.eval()
    model.fcr.eval()
    return model


@pytest.fixture(scope="module")
def quantized():
    return build_quantized_model()


@pytest.fixture(scope="module")
def golden():
    return load_golden(BACKBONE)


@pytest.fixture(scope="module", params=INT8_BACKBONES)
def int8_case(request):
    """(quantized model, golden arrays), parametrized over both families."""
    golden = load_golden(request.param)
    model, _ = build_quantized_model(request.param)
    return model, golden


# ---------------------------------------------------------------------------
# Pass-by-pass parity
# ---------------------------------------------------------------------------
class TestFloatParity:
    @pytest.mark.parametrize("backbone", TINY_BACKBONES)
    def test_optimized_plan_is_bit_identical(self, backbone, rng):
        model = make_model(backbone)
        plan = compile_backbone(model.backbone)
        images = rng.standard_normal((40, 3, 16, 16)).astype(np.float32)
        raw = InferenceEngine(plan, optimize=False, micro_batch=16).run(images)
        optimized = InferenceEngine(plan, optimize=True,
                                    micro_batch=16).run(images)
        np.testing.assert_array_equal(raw, optimized)

    @pytest.mark.parametrize(
        "passes", [eliminate_dead_steps, fuse_quantize_chains,
                   fold_identities, eliminate_common_subexpressions,
                   superfuse_residual_adds, optimize_plan])
    def test_each_pass_preserves_float_outputs(self, passes, rng):
        model = make_model("mobilenetv2_x4_tiny")
        plan = compile_backbone(model.backbone)
        images = rng.standard_normal((9, 3, 16, 16)).astype(np.float32)
        raw = InferenceEngine(plan, optimize=False).run(images)
        transformed = InferenceEngine(passes(plan), optimize=False).run(images)
        np.testing.assert_array_equal(raw, transformed)

    def test_float_plan_has_no_quantize_chains_to_fuse(self):
        model = make_model("mobilenetv2_x4_tiny")
        plan = compile_backbone(model.backbone)
        assert fuse_quantize_chains(plan) is plan
        assert eliminate_dead_steps(plan) is plan

    def test_compile_optimize_kwarg(self, quantized, rng):
        model, _ = quantized
        raw = compile_backbone(model.backbone, mode="int8")
        optimized = compile_backbone(model.backbone, mode="int8",
                                     optimize=True)
        assert not raw.optimized and optimized.optimized
        assert len(optimized.steps) < len(raw.steps)
        images = rng.standard_normal((4, 3, 16, 16)).astype(np.float32)
        np.testing.assert_array_equal(
            InferenceEngine(raw, optimize=False).run(images),
            InferenceEngine(optimized, optimize=False).run(images))


class TestPassesSynthetic:
    @staticmethod
    def _conv_step(name, inputs, output, rng, channels=3):
        weight = rng.standard_normal((channels, channels, 1, 1)) \
            .astype(np.float32)
        return Step(op="conv", name=name, inputs=inputs, output=output,
                    arrays={"weight": weight,
                            "bias": np.zeros(channels, dtype=np.float32)},
                    attrs={"stride": 1, "padding": 0, "groups": 1, "act": None})

    def test_dead_steps_are_eliminated(self, rng):
        live = self._conv_step("live", ("x",), "%live", rng)
        dead = self._conv_step("dead", ("x",), "%dead", rng)
        plan = InferencePlan(steps=[live, dead], output_register="%live")
        optimized = eliminate_dead_steps(plan)
        assert [step.name for step in optimized.steps] == ["live"]
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        np.testing.assert_array_equal(plan.execute(x), optimized.execute(x))

    def test_dead_opaque_steps_are_kept(self, rng):
        probe = nn.ReLU()
        probe.register_forward_hook(lambda module, out: out)
        live = self._conv_step("live", ("x",), "%live", rng)
        dead = Step(op="opaque", name="probe", inputs=("x",), output="%probe",
                    module=probe)
        plan = InferencePlan(steps=[live, dead], output_register="%live")
        assert len(eliminate_dead_steps(plan).steps) == 2

    def test_dequantize_quantize_chain_fuses_to_qrequantize(self, rng):
        steps = [Step(op="dequantize", name="dq", inputs=("x",), output="%f",
                      attrs={"scale": 0.05}),
                 Step(op="quantize", name="q", inputs=("%f",), output="%q",
                      attrs={"scale": 0.125})]
        plan = InferencePlan(steps=steps, output_register="%q")
        fused = fuse_quantize_chains(plan)
        assert [step.op for step in fused.steps] == ["qrequantize"]
        codes = rng.integers(-127, 128, size=(4, 3, 5, 5)).astype(np.int8)
        np.testing.assert_array_equal(plan.execute(codes),
                                      fused.execute(codes))

    def test_same_scale_requantize_quantize_collapses(self, rng):
        steps = [Step(op="requantize", name="rq", inputs=("x",), output="%r",
                      attrs={"scale": 0.0625}),
                 Step(op="quantize", name="q", inputs=("%r",), output="%q",
                      attrs={"scale": 0.0625})]
        plan = InferencePlan(steps=steps, output_register="%q")
        fused = fuse_quantize_chains(plan)
        assert [step.op for step in fused.steps] == ["quantize"]
        x = (rng.standard_normal((4, 8)) * 4.0).astype(np.float32)
        np.testing.assert_array_equal(plan.execute(x), fused.execute(x))

    def test_multi_use_dequantize_is_not_fused(self, rng):
        # The dequantized register feeds the add AND the plan output: folding
        # it into the add would orphan the second consumer.
        steps = [Step(op="dequantize", name="dq", inputs=("x",), output="%f",
                      attrs={"scale": 0.05}),
                 Step(op="add", name="add", inputs=("%f", "%f"), output="%s",
                      attrs={"act": None})]
        plan = InferencePlan(steps=steps, output_register="%f")
        assert fuse_quantize_chains(plan) is plan


class TestInt8Fusion:
    def test_residual_chains_are_fused(self, int8_case):
        model, _ = int8_case
        raw = compile_backbone(model.backbone, mode="int8")
        optimized = optimize_plan(raw)
        assert optimized.optimized
        assert len(optimized.steps) < len(raw.steps)
        # Residual joins either fused their dequantize/quantize neighbours
        # in place (``add`` with scale attrs) or were superfused with their
        # producing conv into one ``qconv_add`` step.
        fused_adds = [step for step in optimized.steps
                      if (step.op == "add"
                          and ("out_scale" in step.attrs
                               or "in_scale_1" in step.attrs))
                      or step.op == "qconv_add"]
        assert fused_adds, "residual dequantize/quantize chains must fuse"
        assert any(step.op == "qconv_add" for step in optimized.steps), \
            "int8 residual tails must superfuse conv + add + requantize"
        # No single-use dequantize feeding an add survives the fusion pass.
        producers = {step.output: step for step in optimized.steps}
        for step in optimized.steps:
            if step.op != "add":
                continue
            for register in step.inputs:
                feeder = producers.get(register)
                assert feeder is None or feeder.op != "dequantize" or \
                    sum(register in other.inputs
                        for other in optimized.steps) > 1

    def test_optimize_plan_is_idempotent(self, int8_case):
        model, _ = int8_case
        plan = optimize_plan(compile_backbone(model.backbone, mode="int8"))
        assert optimize_plan(plan) is plan

    def test_optimized_step_counts_are_pinned(self, int8_case):
        # The recorded step counts per family: regressions here mean a
        # rewrite rule stopped firing.  CI additionally gates the MobileNetV2
        # count through ``plan_stats --assert-max-steps``.
        model, _ = int8_case
        optimized = optimize_plan(compile_backbone(model.backbone,
                                                   mode="int8"))
        pins = {"mobilenetv2_x4_tiny": 32, "resnet20_tiny": 18}
        pin = pins[model.config.backbone]
        assert len(optimized.steps) <= pin
        assert len(optimized.steps) < 35
        assert optimized.pass_stats.get("qconv_add_superfusion", 0) >= 3

    def test_optimized_plan_records_pass_stats(self, int8_case):
        model, _ = int8_case
        optimized = optimize_plan(compile_backbone(model.backbone,
                                                   mode="int8"))
        stats = optimized.pass_stats
        assert stats["dequantize_into_add"] >= 3
        assert stats["add_quantize_fusion"] >= 3
        assert sum(stats.values()) > 0

    @pytest.mark.parametrize(
        "passes", [eliminate_dead_steps, fuse_quantize_chains,
                   fold_identities, eliminate_common_subexpressions,
                   superfuse_residual_adds, optimize_plan])
    def test_each_pass_reproduces_the_golden_bits(self, passes, int8_case):
        model, golden = int8_case
        plan = passes(compile_backbone(model.backbone, mode="int8"))
        out = InferenceEngine(plan, optimize=False).run(golden["images"])
        np.testing.assert_array_equal(out, golden["theta_a"])

    def test_arena_and_threads_reproduce_the_golden_bits(self, int8_case):
        model, golden = int8_case
        plan = compile_backbone(model.backbone, mode="int8")
        engine = InferenceEngine(plan, micro_batch=3, num_threads=2)
        np.testing.assert_array_equal(engine.run(golden["images"]),
                                      golden["theta_a"])
        assert engine.memory_plan is not None


# ---------------------------------------------------------------------------
# Arena memory planner
# ---------------------------------------------------------------------------
def materialized_memory_plan(plan, images):
    engine = InferenceEngine(plan, micro_batch=images.shape[0])
    engine.run(images)
    return engine.plan, engine.memory_plan


def assert_no_live_aliasing(plan, memory_plan):
    """No slot may host two registers whose live intervals overlap.

    A register is live from the step defining it through the last step
    reading it (or any view of it); the plan output lives forever.  This is
    the safety property the executor relies on when it hands kernels
    ``out=`` views: writing a step's output must never clobber a value some
    later step still reads.
    """
    def root(register):
        while register in memory_plan.alias_of:
            register = memory_plan.alias_of[register]
        return register

    defined = {root(step.output): index
               for index, step in enumerate(plan.steps)
               if step.output not in memory_plan.alias_of}
    last_read = {}
    for register, index in plan.last_use().items():
        register = root(register)
        last_read[register] = max(last_read.get(register, -1), index)
    intervals = {register: (defined[register],
                            last_read.get(register, defined[register]))
                 for register in memory_plan.slot_of}
    registers = sorted(memory_plan.slot_of)
    for i, first in enumerate(registers):
        for second in registers[i + 1:]:
            if memory_plan.slot_of[first] != memory_plan.slot_of[second]:
                continue
            start_a, end_a = intervals[first]
            start_b, end_b = intervals[second]
            assert end_a < start_b or end_b < start_a, (
                f"registers {first} and {second} share slot "
                f"{memory_plan.slot_of[first]} while both live "
                f"({intervals[first]} vs {intervals[second]})")


class TestArenaPlanner:
    @pytest.mark.parametrize("backbone", TINY_BACKBONES)
    def test_planner_never_aliases_live_registers(self, backbone, rng):
        model = make_model(backbone)
        images = rng.standard_normal((6, 3, 16, 16)).astype(np.float32)
        plan, memory_plan = materialized_memory_plan(
            compile_backbone(model.backbone), images)
        assert memory_plan.num_slots >= 2
        assert_no_live_aliasing(plan, memory_plan)

    def test_planner_property_on_random_conv_stacks(self, rng):
        for trial in range(5):
            depth = int(rng.integers(2, 6))
            channels = [3] + [int(rng.integers(2, 9)) for _ in range(depth)]
            layers = [ConvBNReLU(channels[i], channels[i + 1], rng=rng)
                      for i in range(depth)]
            net = nn.Sequential(*layers, nn.GlobalAvgPool2d())
            net.eval()
            images = rng.standard_normal((3, 3, 12, 12)).astype(np.float32)
            plan, memory_plan = materialized_memory_plan(
                compile_module(net), images)
            assert_no_live_aliasing(plan, memory_plan)

    def test_int8_planner_never_aliases_live_registers(self, int8_case):
        model, golden = int8_case
        plan, memory_plan = materialized_memory_plan(
            compile_backbone(model.backbone, mode="int8"),
            golden["images"])
        assert_no_live_aliasing(plan, memory_plan)

    def test_arena_shrinks_peak_memory(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        images = rng.standard_normal((8, 3, 16, 16)).astype(np.float32)
        _, memory_plan = materialized_memory_plan(
            compile_backbone(model.backbone), images)
        peak = memory_plan.peak_bytes(64)
        unplanned = memory_plan.unplanned_bytes(64)
        assert peak < 0.6 * unplanned, (
            f"arena ({peak} B) must cut >= 40% off per-step allocation "
            f"({unplanned} B)")

    def test_results_survive_arena_reuse_across_chunks(self, rng):
        # The plan output must never live in the arena: a second run reuses
        # every slot, and the first result has been handed to the caller.
        model = make_model("mobilenetv2_x4_tiny")
        engine = InferenceEngine(compile_backbone(model.backbone),
                                 micro_batch=8)
        first_images = rng.standard_normal((8, 3, 16, 16)).astype(np.float32)
        second_images = rng.standard_normal((8, 3, 16, 16)).astype(np.float32)
        first = engine.run(first_images)
        kept = first.copy()
        second = engine.run(second_images)
        np.testing.assert_array_equal(first, kept)
        assert not np.array_equal(first, second)

    def test_memory_plan_rebuilds_on_input_shape_change(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        plan = compile_backbone(model.backbone)
        engine = InferenceEngine(plan, micro_batch=4)
        engine.run(rng.standard_normal((8, 3, 16, 16)).astype(np.float32))
        assert engine.memory_plan.input_shape == (3, 16, 16)
        large = rng.standard_normal((8, 3, 20, 20)).astype(np.float32)
        out = engine.run(large)
        assert engine.memory_plan.input_shape == (3, 20, 20)
        reference = InferenceEngine(plan, optimize=False,
                                    micro_batch=4).run(large)
        np.testing.assert_array_equal(out, reference)

    def test_flatten_output_plan_is_safe(self, rng):
        # A plan ending in a flatten view must not return a view into the
        # arena: its alias root is unmanaged by construction.
        net = nn.Sequential(ConvBNReLU(3, 4, rng=rng), nn.Flatten())
        net.eval()
        engine = InferenceEngine(compile_module(net), micro_batch=2)
        images = rng.standard_normal((6, 3, 6, 6)).astype(np.float32)
        first = engine.run(images[:2])
        kept = first.copy()
        engine.run(images[2:])
        np.testing.assert_array_equal(first, kept)
        memory_plan = engine.memory_plan
        assert memory_plan.alias_of     # the flatten is planned as an alias

    def test_describe_includes_arena_summary(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        engine = InferenceEngine(compile_backbone(model.backbone))
        engine.run(rng.standard_normal((4, 3, 16, 16)).astype(np.float32))
        description = engine.describe()
        assert "# arena:" in description and "slot 0:" in description
        # Without a memory plan, describe() stays one line per step.
        plan = compile_backbone(model.backbone)
        assert len(plan.describe().splitlines()) == len(plan) + 1


# ---------------------------------------------------------------------------
# Remainder chunks through the arena (slot views are recorded from a full
# micro-batch chunk; every smaller chunk slices the same buffers)
# ---------------------------------------------------------------------------
class TestArenaRemainderChunks:
    def test_remainder_chunks_execute_bitwise_through_the_arena(self,
                                                                int8_case):
        # N % micro_batch != 0: the final chunk's slot views are prefix
        # slices of buffers whose shapes were recorded from a full chunk —
        # they must be exactly the contiguous layout the kernels' out=
        # paths expect, so the int8 bits cannot move.
        model, golden = int8_case
        plan = compile_backbone(model.backbone, mode="int8")
        images = np.concatenate([golden["images"], golden["images"]])  # 16
        reference = InferenceEngine(plan, optimize=False,
                                    micro_batch=64).run(images)
        engine = InferenceEngine(plan, micro_batch=5, num_threads=1)
        np.testing.assert_array_equal(engine.run(images), reference)
        assert engine.memory_plan is not None
        # And with threaded chunk execution over the ragged tail.
        threaded = InferenceEngine(plan, micro_batch=5, num_threads=3)
        np.testing.assert_array_equal(threaded.run(images), reference)
        threaded.close()

    def test_first_run_smaller_than_micro_batch(self, int8_case):
        # The memory plan records shapes from whatever the first real chunk
        # is; a first run below the micro-batch must plan per-sample shapes
        # that later full-size chunks slice correctly.
        model, golden = int8_case
        plan = compile_backbone(model.backbone, mode="int8")
        engine = InferenceEngine(plan, micro_batch=64, num_threads=1)
        engine.run(golden["images"][:3])          # records at batch 3
        assert engine.memory_plan is not None
        assert engine.memory_plan.capacity_batch == 64
        np.testing.assert_array_equal(engine.run(golden["images"]),
                                      golden["theta_a"])

    def test_oversized_direct_execute_rekeys_the_arena(self, rng):
        # Executing the plan directly (outside the engine, which clamps
        # chunks to its micro-batch) with a batch beyond the arena capacity
        # must neither corrupt results nor accumulate one eviction-exempt
        # buffer per distinct oversize: the arena is rekeyed at the larger
        # capacity.
        model = make_model("mobilenetv2_x4_tiny")
        engine = InferenceEngine(compile_backbone(model.backbone),
                                 micro_batch=4)
        engine.run(rng.standard_normal((4, 3, 16, 16)).astype(np.float32))
        memory_plan = engine.memory_plan
        # A second cache (standing in for a pool thread's) materialises its
        # arena under the original capacity.
        other_cache = BufferCache()
        small = rng.standard_normal((4, 3, 16, 16)).astype(np.float32)
        engine.plan.execute(small, other_cache, memory_plan=memory_plan)
        big = rng.standard_normal((9, 3, 16, 16)).astype(np.float32)
        out = engine.plan.execute(big, engine.cache, memory_plan=memory_plan)
        reference = engine.plan.execute(big, BufferCache())
        np.testing.assert_array_equal(out, reference)
        assert memory_plan.capacity_batch == 9
        arena_keys = [key for key in engine.cache._buffers
                      if key[0].startswith(BufferCache.ARENA_PREFIX)]
        assert len(arena_keys) == memory_plan.num_slots
        # The other cache retires its stale-capacity buffers lazily on its
        # next planned execute instead of pinning them forever (arena
        # buffers are exempt from LRU eviction).
        np.testing.assert_array_equal(
            engine.plan.execute(big, other_cache, memory_plan=memory_plan),
            reference)
        other_arena = [key for key in other_cache._buffers
                       if key[0].startswith(BufferCache.ARENA_PREFIX)]
        assert len(other_arena) == memory_plan.num_slots
        other_cache.check_invariants()


# ---------------------------------------------------------------------------
# Thread-pool chunk execution
# ---------------------------------------------------------------------------
class TestThreadedEngine:
    def test_threaded_chunks_match_serial_bitwise(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        plan = compile_backbone(model.backbone)
        images = rng.standard_normal((70, 3, 16, 16)).astype(np.float32)
        serial = InferenceEngine(plan, micro_batch=8, num_threads=1)
        threaded = InferenceEngine(plan, micro_batch=8, num_threads=3)
        np.testing.assert_array_equal(serial.run(images), threaded.run(images))
        assert serial.batches_run == threaded.batches_run == 9
        assert threaded.samples_run == 70
        threaded.close()

    def test_per_thread_caches_are_registered(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        engine = InferenceEngine(compile_backbone(model.backbone),
                                 micro_batch=4, num_threads=2)
        engine.run(rng.standard_normal((32, 3, 16, 16)).astype(np.float32))
        assert engine.cache_bytes > 0
        assert len(engine._caches) >= 1
        engine.close()

    def test_opaque_plans_stay_serial_but_correct(self, rng):
        net = nn.Sequential(ConvBNReLU(3, 4, rng=rng), nn.GlobalAvgPool2d())
        net.eval()
        net[0].act.register_forward_hook(lambda module, out: out * 2.0)
        engine = InferenceEngine(compile_module(net), micro_batch=4,
                                 num_threads=4)
        assert not engine._parallel_ok
        images = rng.standard_normal((12, 3, 8, 8)).astype(np.float32)
        reference = InferenceEngine(compile_module(net), optimize=False,
                                    micro_batch=4).run(images)
        np.testing.assert_array_equal(engine.run(images), reference)

    def test_invalid_thread_count_rejected(self):
        model = make_model("mobilenetv2_x4_tiny")
        with pytest.raises(ValueError):
            InferenceEngine(compile_backbone(model.backbone), num_threads=0)

    def test_memory_plan_for_a_rewritten_plan_is_dropped(self, quantized,
                                                         golden):
        # A memory plan recorded against a raw plan maps registers that
        # optimization renames (add -> quantize fusion); accepting it would
        # let the fused add write into a slot whose reservation was computed
        # from the raw plan's liveness.  The engine must drop it and
        # re-record instead of executing through a mismatched arena.
        from repro.runtime import plan_memory
        from repro.runtime.kernels import BufferCache as Cache

        model, _ = quantized
        raw = compile_backbone(model.backbone, mode="int8")
        record = {}
        raw.execute(golden["images"], Cache(), record=record)
        stale = plan_memory(raw, record, golden["images"].shape)
        engine = InferenceEngine(raw, micro_batch=3, memory_plan=stale)
        assert engine.memory_plan is None        # dropped, not trusted
        np.testing.assert_array_equal(engine.run(golden["images"]),
                                      golden["theta_a"])
        assert engine.memory_plan is not stale   # re-recorded on first run


# ---------------------------------------------------------------------------
# LRU-bounded buffer cache
# ---------------------------------------------------------------------------
class TestBufferCacheBudget:
    def test_unbounded_by_default(self):
        cache = BufferCache()
        for index in range(8):
            cache.get(f"tag{index}", (1024,), np.float32)
        assert len(cache) == 8

    def test_lru_eviction_past_budget(self):
        cache = BufferCache(max_bytes=3 * 4096)
        for index in range(3):
            cache.get(f"tag{index}", (1024,), np.float32)   # 4 KiB each
        cache.get("tag0", (1024,), np.float32)              # refresh tag0
        cache.get("tag3", (1024,), np.float32)              # evicts tag1 (LRU)
        tags = {key[0] for key in cache._buffers}
        assert tags == {"tag0", "tag2", "tag3"}
        assert cache.nbytes == 3 * 4096
        cache.check_invariants()

    def test_requested_buffer_is_never_evicted(self):
        cache = BufferCache(max_bytes=1024)
        big = cache.get("big", (4096,), np.float32)         # over budget alone
        assert cache.get("big", (4096,), np.float32) is big
        assert len(cache) == 1
        cache.check_invariants()

    def test_nbytes_tracks_clear(self):
        cache = BufferCache(max_bytes=10 * 4096)
        cache.get("a", (1024,), np.float32)
        assert cache.nbytes == 4096
        cache.clear()
        assert cache.nbytes == 0 and len(cache) == 0
        cache.check_invariants()

    def test_byte_accounting_survives_drop_evict_reget_sequences(self):
        # The counters are maintained incrementally; any desync across
        # drop_arena + LRU eviction + same-key re-get sequences would skew
        # the budget and every cache_bytes stat.  check_invariants recomputes
        # both sums from the held buffers after every mutation.
        rng = np.random.default_rng(0)
        for budget in (None, 64, 1024):
            cache = BufferCache(max_bytes=budget)
            for _ in range(2000):
                action = rng.integers(0, 10)
                if action < 7:
                    arena = rng.integers(0, 3) == 0
                    tag = ("arena:" if arena else "") + f"t{rng.integers(0, 6)}"
                    dtype = np.uint8 if rng.integers(0, 2) else np.float32
                    cache.get(tag, (int(rng.integers(1, 64)),), dtype)
                elif action < 9:
                    cache.drop_arena()
                else:
                    cache.clear()
                cache.check_invariants()

    def test_engine_caches_keep_consistent_accounting(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        engine = InferenceEngine(compile_backbone(model.backbone),
                                 micro_batch=8, cache_budget=1 << 18)
        for batch in (16, 3, 16, 5):
            engine.run(rng.standard_normal((batch, 3, 16, 16))
                       .astype(np.float32))
        for cache in engine._caches:
            cache.check_invariants()

    def test_engine_budget_bounds_cache(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        budget = 1 << 20
        engine = InferenceEngine(compile_backbone(model.backbone),
                                 micro_batch=16, cache_budget=budget)
        engine.run(rng.standard_normal((48, 3, 16, 16)).astype(np.float32))
        exempt = sum(buffer.nbytes
                     for key, buffer in engine.cache._buffers.items()
                     if key[0].startswith(BufferCache.ARENA_PREFIX))
        slack = max(buffer.nbytes
                    for buffer in engine.cache._buffers.values())
        assert engine.cache_bytes <= budget + exempt + slack

    def test_arena_buffers_are_never_evicted(self, rng):
        # A budget below the arena working set must not make every step's
        # out_view evict the other slots: the budget governs scratch only,
        # so planned execution stays allocation-free and bit-correct.
        model = make_model("mobilenetv2_x4_tiny")
        plan = compile_backbone(model.backbone)
        images = rng.standard_normal((32, 3, 16, 16)).astype(np.float32)
        tight = InferenceEngine(plan, micro_batch=8, cache_budget=1)
        reference = InferenceEngine(plan, micro_batch=8)
        np.testing.assert_array_equal(tight.run(images), reference.run(images))
        arena_keys = [key for key in tight.cache._buffers
                      if key[0].startswith(BufferCache.ARENA_PREFIX)]
        assert len(arena_keys) == tight.memory_plan.num_slots

    def test_arena_bytes_do_not_consume_the_scratch_budget(self, rng):
        # Arena bytes exceeding max_bytes must not evict scratch buffers on
        # every get (the im2col/pad reuse the 4.5x floor depends on).
        cache = BufferCache(max_bytes=4096)
        cache.get("arena:0", (1 << 20,), np.uint8)     # 1 MiB, over budget
        pad = cache.get("pad", (512,), np.float32)     # 2 KiB scratch
        assert cache.get("col", (256,), np.float32) is not None
        assert cache.get("pad", (512,), np.float32) is pad   # not thrashed
        assert cache._scratch_nbytes <= cache.max_bytes

    def test_varying_chunk_sizes_reuse_one_buffer_per_slot(self, rng):
        # Dynamic batchers produce many distinct batch sizes; the arena must
        # not retain one buffer per (slot, size) pair.
        model = make_model("mobilenetv2_x4_tiny")
        engine = InferenceEngine(compile_backbone(model.backbone),
                                 micro_batch=32)
        for batch in (32, 1, 7, 13, 32, 5, 19):
            engine.run(rng.standard_normal((batch, 3, 16, 16))
                       .astype(np.float32))
        arena_keys = [key for key in engine.cache._buffers
                      if key[0].startswith(BufferCache.ARENA_PREFIX)]
        assert len(arena_keys) == engine.memory_plan.num_slots
        assert sum(engine.cache._buffers[key].nbytes
                   for key in arena_keys) == \
            engine.memory_plan.peak_bytes(engine.micro_batch)

    def test_restored_plan_capacity_is_raised_to_the_micro_batch(self, rng):
        # A shipped memory plan recorded at a smaller micro-batch must not
        # key one eviction-exempt arena buffer per distinct larger chunk
        # size: the accepting engine raises the capacity to its own
        # micro-batch.
        model = make_model("mobilenetv2_x4_tiny")
        small = InferenceEngine(compile_backbone(model.backbone),
                                micro_batch=8)
        small.run(rng.standard_normal((8, 3, 16, 16)).astype(np.float32))
        assert small.memory_plan.capacity_batch == 8
        big = InferenceEngine(small.plan, micro_batch=32,
                              memory_plan=small.memory_plan)
        assert big.memory_plan.capacity_batch == 32
        for batch in (32, 16, 24, 32):
            big.run(rng.standard_normal((batch, 3, 16, 16))
                    .astype(np.float32))
        arena_keys = [key for key in big.cache._buffers
                      if key[0].startswith(BufferCache.ARENA_PREFIX)]
        assert len(arena_keys) == big.memory_plan.num_slots

    def test_counters_track_completed_chunks_only(self, rng):
        calls = []

        def failing_hook(module, out):
            calls.append(out)
            if len(calls) >= 2:
                raise RuntimeError("hook blew up")
            return out

        net = nn.Sequential(ConvBNReLU(3, 4, rng=rng), nn.GlobalAvgPool2d())
        net.eval()
        net[0].act.register_forward_hook(failing_hook)
        engine = InferenceEngine(compile_module(net), micro_batch=4)
        images = rng.standard_normal((12, 3, 8, 8)).astype(np.float32)
        with pytest.raises(RuntimeError, match="hook blew up"):
            engine.run(images)
        assert engine.batches_run == 1      # only the completed first chunk
        assert engine.samples_run == 0      # the run never finished

    def test_replan_retires_the_stale_arena(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        engine = InferenceEngine(compile_backbone(model.backbone),
                                 micro_batch=4)
        engine.run(rng.standard_normal((8, 3, 16, 16)).astype(np.float32))
        stale = {key for key in engine.cache._buffers
                 if key[0].startswith(BufferCache.ARENA_PREFIX)}
        assert stale
        engine.run(rng.standard_normal((8, 3, 20, 20)).astype(np.float32))
        current = {key for key in engine.cache._buffers
                   if key[0].startswith(BufferCache.ARENA_PREFIX)}
        assert current and not (stale & current)
        assert len(current) == engine.memory_plan.num_slots


# ---------------------------------------------------------------------------
# Fused kernels replicate the unfused arithmetic exactly
# ---------------------------------------------------------------------------
class TestFusedKernels:
    def test_fused_add_matches_unfused_chain(self, rng):
        x_codes = rng.integers(-127, 128, (4, 6, 5, 5)).astype(np.int8)
        y = rng.standard_normal((4, 6, 5, 5)).astype(np.float32)
        s_x, s_out = 0.07, 0.11
        expected = kernels.quantize_int8(
            kernels.apply_activation(
                kernels.dequantize_int8(x_codes, s_x) + y, "relu"),
            s_out)
        cache = BufferCache()
        actual = kernels.fused_add(x_codes, y, in_scale_x=s_x, act="relu",
                                   out_scale=s_out, cache=cache)
        np.testing.assert_array_equal(actual, expected)

    def test_fused_add_float_path_matches_plain_add(self, rng):
        x = rng.standard_normal((3, 4, 6, 6)).astype(np.float32)
        y = rng.standard_normal((3, 4, 6, 6)).astype(np.float32)
        np.testing.assert_array_equal(kernels.fused_add(x, y), x + y)

    def test_requantize_codes_matches_chain(self, rng):
        codes = rng.integers(-127, 128, (4, 8, 3, 3)).astype(np.int8)
        s_in, s_out = 0.05, 0.125
        expected = kernels.quantize_int8(
            kernels.dequantize_int8(codes, s_in), s_out)
        actual = kernels.requantize_codes(codes, s_in, s_out,
                                          cache=BufferCache())
        np.testing.assert_array_equal(actual, expected)

    def test_depthwise_fast_path_is_exact_for_integers(self, rng):
        channels = 5
        q = rng.integers(-127, 128, (3, channels, 9, 9)).astype(np.int8)
        weight_q = rng.integers(-127, 128,
                                (channels, 1, 3, 3)).astype(np.int8)
        fast = kernels.depthwise_conv(q, weight_q.astype(np.float32),
                                      stride=1, padding=1)
        cols = kernels.im2col_cached(q, 3, 3, 1, 1).astype(np.int64)
        exact = np.einsum("nckl,ck->ncl", cols,
                          weight_q.reshape(channels, 9).astype(np.int64))
        np.testing.assert_array_equal(
            fast.reshape(3, channels, -1).astype(np.int64), exact)

    def test_pad_cached_rezeroes_only_the_stale_halo(self, rng):
        # Two layers with the same padded shape but different (h, padding)
        # splits share one cache buffer; each call must see a zero halo.
        cache = BufferCache()
        small = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        large = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        for x, padding in ((large, 1), (small, 2), (large, 1), (small, 2)):
            cached = kernels.pad_cached(x, padding, cache)
            np.testing.assert_array_equal(cached,
                                          kernels.pad_cached(x, padding, None))
        assert len([key for key in cache._buffers if key[0] == "pad"]) == 1

    def test_pad_cached_mixed_padding_reuse_survives_poisoning(self, rng):
        # Adversarial variant of the halo test: between calls the entire
        # shared buffer is filled with garbage (NaN / sentinel codes), so a
        # single element anywhere in the delta region between the old and
        # new halo that pad_cached fails to rewrite surfaces immediately —
        # for float and int8 layers, square and rectangular maps.
        for dtype, poison in ((np.float32, np.nan), (np.int8, 113)):
            cache = BufferCache()
            for h, w, padding in ((8, 6, 1), (6, 4, 2), (8, 6, 1),
                                  (4, 2, 3), (6, 4, 2)):
                x = (rng.standard_normal((2, 3, h, w)) * 40).astype(dtype)
                padded_shape = (2, 3, h + 2 * padding, w + 2 * padding)
                cache.get("pad", padded_shape, dtype)[...] = poison
                cached = kernels.pad_cached(x, padding, cache)
                np.testing.assert_array_equal(
                    cached, kernels.pad_cached(x, padding, None))
            assert len([key for key in cache._buffers
                        if key[0] == "pad"]) == 1

    def test_int_global_avg_pool_is_exact_integer_accumulation(self, rng):
        q = rng.integers(-127, 128, (4, 6, 7, 5)).astype(np.int8)
        scale = 0.03125
        expected = (q.astype(np.int64).sum(axis=(2, 3))
                    * (scale / 35.0)).astype(np.float32)
        np.testing.assert_array_equal(
            kernels.int_global_avg_pool(q, scale), expected)
        out = np.empty((4, 6), dtype=np.float32)
        kernels.int_global_avg_pool(q, scale, out=out)
        np.testing.assert_array_equal(out, expected)
        # Chunking the batch cannot perturb a bit (per-sample arithmetic).
        np.testing.assert_array_equal(
            np.concatenate([kernels.int_global_avg_pool(q[:1], scale),
                            kernels.int_global_avg_pool(q[1:], scale)]),
            expected)


# ---------------------------------------------------------------------------
# Snapshots carry optimized plans + arena specs
# ---------------------------------------------------------------------------
class TestSnapshotCarriesArena:
    def test_snapshot_preserves_optimization_and_memory_plan(self, rng):
        import pickle

        model = make_model("mobilenetv2_x4_tiny")
        images = rng.standard_normal((20, 3, 16, 16)).astype(np.float32)
        for class_id in range(2):
            model.learn_class(images[class_id * 5:(class_id + 1) * 5],
                              class_id)
        predictor = model.runtime_predictor()
        predictor.predict(images)              # materialise the memory plan
        snapshot = pickle.loads(pickle.dumps(snapshot_model(model)))
        assert snapshot.backbone.optimized
        restored_memory_plan = snapshot.backbone.restore_memory_plan()
        assert restored_memory_plan is not None
        assert restored_memory_plan.num_slots == \
            predictor.backbone_engine.memory_plan.num_slots
        engine = InferenceEngine(snapshot.backbone.restore(),
                                 memory_plan=restored_memory_plan,
                                 micro_batch=snapshot.micro_batch)
        np.testing.assert_array_equal(
            engine.run(images), predictor.extract_backbone_features(images))

    def test_predictor_runtime_stats_surface(self, rng):
        model = make_model("mobilenetv2_x4_tiny")
        predictor = model.runtime_predictor()
        predictor.embed(rng.standard_normal((8, 3, 16, 16)).astype(np.float32))
        stats = predictor.runtime_stats()
        assert stats["cache_bytes"] > 0
        assert stats["arena_slots"] >= 2
        assert stats["arena_peak_bytes"] > 0
        assert stats["arena_peak_bytes"] < stats["arena_unplanned_bytes"]
        assert stats["samples_served"] >= 8
