"""FSCIL benchmark protocol: base session + N-way S-shot incremental sessions.

Mirrors the CIFAR100 FSCIL benchmark used by the paper: 60 base classes and
eight incremental 5-way 5-shot sessions, evaluated after each session on the
union of all classes seen so far.  The underlying images come from the
synthetic generator (:mod:`repro.data.synthetic`), and the split logic is
independent of the image source so it applies to any :class:`ArrayDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .dataset import ArrayDataset
from .synthetic import SyntheticConfig, SyntheticImageGenerator, normalize_images


@dataclass
class FSCILProtocol:
    """Parameters of the few-shot class-incremental benchmark."""

    num_classes: int = 100
    base_classes: int = 60
    ways: int = 5
    shots: int = 5
    num_sessions: int = 8
    base_train_per_class: int = 50
    test_per_class: int = 100
    image_size: int = 32
    seed: int = 0

    def __post_init__(self):
        required = self.base_classes + self.ways * self.num_sessions
        if required > self.num_classes:
            raise ValueError(
                f"protocol needs {required} classes but only {self.num_classes} exist")

    @property
    def total_sessions(self) -> int:
        """Number of evaluation points: the base session plus incremental ones."""
        return self.num_sessions + 1

    def session_classes(self, session: int) -> np.ndarray:
        """Class ids introduced in ``session`` (0 = base session)."""
        if session == 0:
            return np.arange(self.base_classes)
        start = self.base_classes + (session - 1) * self.ways
        return np.arange(start, start + self.ways)

    def seen_classes(self, session: int) -> np.ndarray:
        """All class ids seen up to and including ``session``."""
        end = self.base_classes + session * self.ways
        return np.arange(end)


@dataclass
class IncrementalSession:
    """Support data of one incremental session."""

    index: int
    class_ids: np.ndarray
    support: ArrayDataset


@dataclass
class FSCILBenchmark:
    """A complete FSCIL benchmark instance.

    Attributes:
        protocol: the split protocol parameters.
        base_train: labelled training data of the base session.
        sessions: the incremental sessions (1..num_sessions), each holding a
            few-shot support set of the newly introduced classes.
        test: test data covering all classes; use :meth:`test_upto` to fetch
            the evaluation set after a given session.
    """

    protocol: FSCILProtocol
    base_train: ArrayDataset
    sessions: List[IncrementalSession]
    test: ArrayDataset
    normalization: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def test_upto(self, session: int) -> ArrayDataset:
        """Test samples of every class seen up to ``session`` (inclusive)."""
        return self.test.filter_classes(self.protocol.seen_classes(session))

    def session(self, index: int) -> IncrementalSession:
        if index < 1 or index > len(self.sessions):
            raise IndexError(f"incremental sessions are numbered 1..{len(self.sessions)}")
        return self.sessions[index - 1]

    @property
    def num_sessions(self) -> int:
        return self.protocol.num_sessions


# ---------------------------------------------------------------------------
# Named benchmark profiles
# ---------------------------------------------------------------------------
PROFILES: Dict[str, Dict] = {
    # Exact CIFAR100 FSCIL protocol shape on full-resolution synthetic images.
    "paper": dict(num_classes=100, base_classes=60, ways=5, shots=5,
                  num_sessions=8, base_train_per_class=50, test_per_class=100,
                  image_size=32),
    # Same protocol (60 base + 8 x 5-way 5-shot) with smaller images and test
    # pools so end-to-end runs complete quickly on a CPU.
    "laptop": dict(num_classes=100, base_classes=60, ways=5, shots=5,
                   num_sessions=8, base_train_per_class=30, test_per_class=15,
                   image_size=16),
    # Miniature protocol for unit tests.
    "test": dict(num_classes=20, base_classes=8, ways=3, shots=5,
                 num_sessions=4, base_train_per_class=15, test_per_class=8,
                 image_size=16),
}


def build_protocol(profile: str = "laptop", **overrides) -> FSCILProtocol:
    """Create an :class:`FSCILProtocol` from a named profile plus overrides."""
    if profile not in PROFILES:
        raise KeyError(f"unknown FSCIL profile {profile!r}; known: {sorted(PROFILES)}")
    params = dict(PROFILES[profile])
    params.update(overrides)
    return FSCILProtocol(**params)


def split_dataset(protocol: FSCILProtocol, train: ArrayDataset, test: ArrayDataset,
                  seed: Optional[int] = None) -> FSCILBenchmark:
    """Split externally provided train/test data according to the protocol."""
    rng = np.random.default_rng(protocol.seed if seed is None else seed)
    base_train = train.filter_classes(protocol.session_classes(0))
    sessions = []
    for session_index in range(1, protocol.num_sessions + 1):
        class_ids = protocol.session_classes(session_index)
        pool = train.filter_classes(class_ids)
        support = pool.sample_per_class(protocol.shots, rng)
        sessions.append(IncrementalSession(session_index, class_ids, support))
    return FSCILBenchmark(protocol=protocol, base_train=base_train,
                          sessions=sessions, test=test)


def build_synthetic_fscil(profile: str = "laptop", seed: int = 0,
                          normalize: bool = True, **overrides) -> FSCILBenchmark:
    """Generate a synthetic FSCIL benchmark for the given profile.

    The train pool holds ``base_train_per_class`` images per class (the
    incremental support sets are sampled from it), and the test pool holds
    ``test_per_class`` images per class drawn with a different seed.
    """
    protocol = build_protocol(profile, **overrides)
    synth_config = SyntheticConfig(num_classes=protocol.num_classes,
                                   image_size=protocol.image_size,
                                   seed=protocol.seed + 7)
    generator = SyntheticImageGenerator(synth_config)
    train_pool = generator.generate(protocol.base_train_per_class, seed=seed + 1)
    test_pool = generator.generate(protocol.test_per_class, seed=seed + 2)

    normalization = None
    if normalize:
        base_images = train_pool.filter_classes(protocol.session_classes(0)).images
        _, mean, std = normalize_images(base_images)
        train_pool = ArrayDataset(((train_pool.images - mean) / std).astype(np.float32),
                                  train_pool.labels)
        test_pool = ArrayDataset(((test_pool.images - mean) / std).astype(np.float32),
                                 test_pool.labels)
        normalization = (mean, std)

    benchmark = split_dataset(protocol, train_pool, test_pool, seed=seed + 3)
    benchmark.normalization = normalization
    return benchmark
