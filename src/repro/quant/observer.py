"""Range observers used to calibrate quantization scales.

An observer watches tensors flowing through a point of the network and keeps
enough statistics to later derive a quantization threshold (symmetric
max-abs, percentile-clipped, or moving average over calibration batches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class QuantizationRange:
    """Calibrated range of one tensor."""

    min_value: float
    max_value: float

    @property
    def max_abs(self) -> float:
        return max(abs(self.min_value), abs(self.max_value))


class MinMaxObserver:
    """Tracks the running min/max of every observed tensor."""

    def __init__(self):
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self.count = 0

    def observe(self, values: np.ndarray) -> None:
        if values.size == 0:
            return
        low, high = float(values.min()), float(values.max())
        self.min_value = low if self.min_value is None else min(self.min_value, low)
        self.max_value = high if self.max_value is None else max(self.max_value, high)
        self.count += 1

    @property
    def calibrated(self) -> bool:
        return self.count > 0

    def range(self) -> QuantizationRange:
        if not self.calibrated:
            raise RuntimeError("observer has not seen any data")
        return QuantizationRange(self.min_value, self.max_value)


class MovingAverageObserver:
    """Exponential moving average of per-batch min/max (QAT-style)."""

    def __init__(self, momentum: float = 0.9):
        self.momentum = momentum
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self.count = 0

    def observe(self, values: np.ndarray) -> None:
        if values.size == 0:
            return
        low, high = float(values.min()), float(values.max())
        if self.min_value is None:
            self.min_value, self.max_value = low, high
        else:
            self.min_value = self.momentum * self.min_value + (1 - self.momentum) * low
            self.max_value = self.momentum * self.max_value + (1 - self.momentum) * high
        self.count += 1

    @property
    def calibrated(self) -> bool:
        return self.count > 0

    def range(self) -> QuantizationRange:
        if not self.calibrated:
            raise RuntimeError("observer has not seen any data")
        return QuantizationRange(self.min_value, self.max_value)


class PercentileObserver:
    """Clips the range at a percentile of the absolute values seen.

    More robust than min/max against activation outliers, which matters for
    the 8-bit activation quantization of depthwise-separable networks.
    """

    def __init__(self, percentile: float = 99.9, max_samples: int = 200_000,
                 seed: int = 0):
        self.percentile = percentile
        self.max_samples = max_samples
        self._samples: list = []
        self._rng = np.random.default_rng(seed)
        self.count = 0

    def observe(self, values: np.ndarray) -> None:
        flat = np.abs(np.asarray(values).reshape(-1))
        if flat.size == 0:
            return
        if flat.size > 4096:
            flat = self._rng.choice(flat, size=4096, replace=False)
        self._samples.append(flat)
        self.count += 1
        total = sum(len(chunk) for chunk in self._samples)
        if total > self.max_samples:
            merged = np.concatenate(self._samples)
            self._samples = [self._rng.choice(merged, size=self.max_samples, replace=False)]

    @property
    def calibrated(self) -> bool:
        return self.count > 0

    def range(self) -> QuantizationRange:
        if not self.calibrated:
            raise RuntimeError("observer has not seen any data")
        merged = np.concatenate(self._samples)
        bound = float(np.percentile(merged, self.percentile))
        return QuantizationRange(-bound, bound)


def make_observer(kind: str = "minmax", **kwargs):
    """Factory for observers by name ("minmax", "moving_average", "percentile")."""
    if kind == "minmax":
        return MinMaxObserver()
    if kind == "moving_average":
        return MovingAverageObserver(**kwargs)
    if kind == "percentile":
        return PercentileObserver(**kwargs)
    raise ValueError(f"unknown observer kind {kind!r}")
