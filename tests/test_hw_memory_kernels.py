"""GAP9 simulator: SoC config, memory planning, DMA and cycle kernels."""

import pytest

from repro.hw import (
    GAP9Config,
    GraphCost,
    OPERATING_POINTS,
    dma_cycles,
    graph_cycles,
    layer_cycles,
    layer_dma_cycles,
    plan_memory,
    row_parallel_utilization,
    per_core_throughput)
from repro.models import conv_spec, get_config


@pytest.fixture(scope="module")
def gap9():
    return GAP9Config()


@pytest.fixture(scope="module")
def x4_layers():
    return [layer for layer in get_config("mobilenetv2_x4").layer_specs()
            if layer.op_type != "bn"]


class TestSoCConfig:
    def test_default_operating_point(self, gap9):
        assert gap9.operating_point.frequency_hz == pytest.approx(240e6)
        assert gap9.operating_point.voltage_v == pytest.approx(0.65)

    def test_cycles_to_ms(self, gap9):
        assert gap9.cycles_to_ms(240e3) == pytest.approx(1.0)

    def test_named_operating_points(self):
        assert set(OPERATING_POINTS) == {"efficient", "performance", "low_power"}
        assert OPERATING_POINTS["performance"].frequency_hz > \
            OPERATING_POINTS["efficient"].frequency_hz

    def test_power_scale_factor(self, gap9):
        scale = gap9.power.scale_factor(OPERATING_POINTS["performance"])
        assert scale > 1.0
        assert gap9.power.scale_factor(OPERATING_POINTS["efficient"]) == pytest.approx(1.0)

    def test_memory_sizes(self, gap9):
        assert gap9.memory.l1_bytes < gap9.memory.l2_bytes < gap9.memory.l3_bytes


class TestMemoryPlanning:
    def test_small_network_fits_l2(self, gap9):
        layers = get_config("mobilenetv2_tiny").layer_specs()
        plan = plan_memory(layers, gap9)
        assert plan.layers_in_l3 == 0
        assert plan.l3_used_bytes == 0

    def test_large_network_spills_to_l3(self, gap9):
        layers = get_config("resnet12").layer_specs()
        plan = plan_memory(layers, gap9)
        assert plan.layers_in_l3 > 0
        assert plan.l3_used_bytes > 0
        assert plan.l2_used_bytes <= gap9.memory.l2_bytes

    def test_x4_weights_partially_in_l3(self, gap9, x4_layers):
        """The 2.5 MB int8 MobileNetV2 does not fit the 1.5 MB L2 entirely."""
        plan = plan_memory(x4_layers, gap9)
        assert plan.l3_used_bytes > 0
        assert plan.l2_used_bytes > 0

    def test_placement_lookup(self, gap9, x4_layers):
        plan = plan_memory(x4_layers, gap9)
        placement = plan.placement(x4_layers[0].name)
        assert placement.weight_level in ("L2", "L3")
        with pytest.raises(KeyError):
            plan.placement("nonexistent")

    def test_dma_cycles_scale_with_bytes_and_bandwidth(self):
        assert dma_cycles(1000, 8.0) == pytest.approx(125.0)
        assert dma_cycles(1000, 0.5) == pytest.approx(2000.0)
        assert dma_cycles(0, 8.0) == 0.0
        assert dma_cycles(1000, 8.0, setup_cycles=100, num_transfers=2) == pytest.approx(325.0)

    def test_layer_dma_cycles_l3_slower_than_l2(self, gap9):
        layer = conv_spec("c", 64, 64, 3, 1, (8, 8))
        plan_l2 = plan_memory([layer], gap9)
        cycles_l2 = layer_dma_cycles(layer, plan_l2.placement("c"), gap9)
        placement_l3 = plan_l2.placement("c")
        placement_l3.weight_level = "L3"
        cycles_l3 = layer_dma_cycles(layer, placement_l3, gap9)
        assert cycles_l3["weights"] > cycles_l2["weights"]


class TestCycleModel:
    def test_row_parallel_utilization(self):
        assert row_parallel_utilization(8, 8) == pytest.approx(1.0)
        assert row_parallel_utilization(4, 8) == pytest.approx(0.5)
        assert row_parallel_utilization(2, 8) == pytest.approx(0.25)
        assert row_parallel_utilization(16, 8) == pytest.approx(1.0)
        assert row_parallel_utilization(9, 8) == pytest.approx(9 / 16)

    def test_per_core_throughput_by_type(self, gap9):
        assert per_core_throughput("conv", gap9) > per_core_throughput("dwconv", gap9)
        assert per_core_throughput("linear", gap9) > 0

    def test_more_cores_never_slower_for_large_layers(self, gap9):
        layer = conv_spec("c", 32, 64, 3, 1, (32, 32))
        cycles = [layer_cycles(layer, cores, gap9).total_cycles for cores in (1, 2, 4, 8)]
        assert all(a > b for a, b in zip(cycles, cycles[1:]))

    def test_small_spatial_layers_saturate(self, gap9):
        layer = conv_spec("c", 256, 256, 3, 1, (2, 2))
        at_2 = layer_cycles(layer, 2, gap9)
        at_8 = layer_cycles(layer, 8, gap9)
        # Only two output rows: using 8 cores cannot be 4x faster than 2 cores.
        assert at_2.compute_cycles / at_8.compute_cycles < 1.5

    def test_macs_per_cycle_bounded_by_peak(self, gap9):
        layer = conv_spec("c", 64, 64, 3, 1, (16, 16))
        cost = layer_cycles(layer, 8, gap9)
        peak = gap9.compute.conv_macs_per_cycle * 8
        assert 0 < cost.macs_per_cycle <= peak

    def test_elementwise_layers_have_no_macs_per_cycle_contribution(self, gap9):
        from repro.models import act_spec
        cost = layer_cycles(act_spec("relu", 64, (8, 8)), 8, gap9)
        assert cost.macs == 0
        assert cost.total_cycles > 0

    def test_graph_cost_aggregation(self, gap9, x4_layers):
        cost = graph_cycles(x4_layers, 8, gap9)
        assert isinstance(cost, GraphCost)
        assert cost.total_macs == sum(layer.macs for layer in x4_layers)
        assert cost.total_cycles > 0
        assert cost.macs_per_cycle > 1.0
        by_type = cost.by_type()
        assert "conv" in by_type and "dwconv" in by_type

    def test_dma_included_when_memory_plan_given(self, gap9, x4_layers):
        plan = plan_memory(x4_layers, gap9)
        with_dma = graph_cycles(x4_layers, 8, gap9, plan)
        without_dma = graph_cycles(x4_layers, 8, gap9)
        assert with_dma.dma_cycles > 0
        assert without_dma.dma_cycles == 0
        assert with_dma.total_cycles >= without_dma.total_cycles
