"""Sharded multi-worker serving on top of the batched inference runtime.

:mod:`repro.runtime` compiles a model into flat op plans and serves it from
one process; this package scales that out to a pool of worker processes:

* :mod:`repro.serve.snapshot` — freezes compiled plans and prototype state
  into fully picklable, module-ref-free snapshots that can cross process
  boundaries (opaque fallbacks are inlined or rejected with an explicit
  :class:`PlanSerializationError`);
* :mod:`repro.serve.transport` — :class:`SlotRing`, the zero-copy
  shared-memory ring transport: tensor payloads cross process boundaries
  as slot-accounted NumPy views, pickle is reserved for control frames
  (and is the automatic fallback for oversized payloads or a full ring);
* :mod:`repro.serve.sharded` — :class:`ShardedEngine`, a multiprocessing
  worker pool where each worker owns a plan replica plus its own buffer
  cache and a fully private channel pair (request/result queues + rings) —
  no shared lock a killed worker could poison — supervised by a liveness
  watchdog that fails a dead shard's futures fast and routes around it,
  and a supervisor that respawns the shard with backoff
  (:mod:`repro.serve.backoff`), resyncs its state, and rejoins it (up to a
  crash-loop budget); heartbeat-silent shards (SIGSTOP, livelock) are
  escalated to the same path;
* :mod:`repro.serve.journal` — :class:`LearnJournal`, the write-ahead
  ``learn_class`` log: checksummed append-only records replayed by
  :meth:`Server.restore` so online-learned classes survive a full server
  restart bit-for-bit;
* :mod:`repro.serve.server` — :class:`Server`, the dynamic batcher: it
  coalesces single-sample requests under a latency budget, dispatches
  micro-batches to the least-loaded live shard, sheds overload with a
  typed :class:`ServerOverloaded` (bounded admission queue + optional
  latency SLO), and keeps worker prototype replicas in sync with the
  explicit memory through its ``version`` counter.

Typical use::

    from repro.serve import Server

    with Server(model, num_workers=4) as server:   # or model.serve(4)
        labels = server.predict(images)            # == BatchedPredictor, bit-for-bit
        server.learn_class(shots, class_id=42)     # broadcast to every worker
        future = server.submit(image)              # dynamic-batched single query
        print(server.stats_dict())
"""

from .backoff import BackoffSchedule
from .journal import (
    JournalCorruptError,
    JournalError,
    JournalReplayError,
    LearnJournal,
)
from .server import (
    DEFAULT_MAX_LATENCY_S,
    Server,
    ServerClosedError,
    ServerOverloaded,
)
from .sharded import (
    DEFAULT_MAX_RESPAWNS,
    DEFAULT_NUM_WORKERS,
    DEFAULT_START_METHOD,
    EngineClosedError,
    RemoteWorkerError,
    ShardedEngine,
    WorkerDiedError,
)
from .snapshot import (
    ModelSnapshot,
    PlanSerializationError,
    PlanSnapshot,
    PrototypeState,
    snapshot_model,
    snapshot_plan,
    snapshot_prototypes,
)
from .stats import ServeStats
from .transport import SlotRing

__all__ = [
    "Server",
    "ServerClosedError",
    "ServerOverloaded",
    "DEFAULT_MAX_LATENCY_S",
    "ShardedEngine",
    "RemoteWorkerError",
    "WorkerDiedError",
    "EngineClosedError",
    "DEFAULT_NUM_WORKERS",
    "DEFAULT_START_METHOD",
    "DEFAULT_MAX_RESPAWNS",
    "BackoffSchedule",
    "LearnJournal",
    "JournalError",
    "JournalCorruptError",
    "JournalReplayError",
    "ModelSnapshot",
    "PlanSnapshot",
    "PrototypeState",
    "PlanSerializationError",
    "snapshot_plan",
    "snapshot_model",
    "snapshot_prototypes",
    "ServeStats",
    "SlotRing",
]
