"""Functional interface over the autograd primitives.

These free functions mirror the subset of ``torch.nn.functional`` that the
O-FSCIL reproduction needs, implemented on top of :mod:`repro.nn.ops`.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from . import ops
from .tensor import Tensor


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return ops.ReLU.apply(x)


def relu6(x: Tensor) -> Tensor:
    """ReLU clipped at 6 — the MobileNetV2 activation."""
    return ops.ReLU6.apply(x)


def sigmoid(x: Tensor) -> Tensor:
    return ops.Sigmoid.apply(x)


def tanh(x: Tensor) -> Tensor:
    return ops.Tanh.apply(x)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return ops.Softmax.apply(x, axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return ops.LogSoftmax.apply(x, axis)


def dropout(x: Tensor, p: float = 0.5, training: bool = True,
            seed: Optional[int] = None) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p`` is 0."""
    if not training or p <= 0.0:
        return x
    return ops.Dropout.apply(x, p, seed)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (weight stored as (out, in))."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def flatten(x: Tensor, start_dim: int = 1) -> Tensor:
    return x.flatten(start_dim)


def pad2d(x: Tensor, padding: Union[int, Tuple[int, int]]) -> Tensor:
    """Zero-pad the two trailing spatial dimensions of an NCHW tensor."""
    if isinstance(padding, int):
        pad_h = pad_w = padding
    else:
        pad_h, pad_w = padding
    if pad_h == 0 and pad_w == 0:
        return x
    pad_width = ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w))
    return ops.Pad.apply(x, pad_width)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalize ``x`` to unit L2 norm along ``axis``."""
    squared = (x * x).sum(axis=axis, keepdims=True)
    norm = (squared + eps).sqrt()
    return x / norm


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Cosine similarity between ``a`` and ``b`` along ``axis``."""
    a_n = l2_normalize(a, axis=axis, eps=eps)
    b_n = l2_normalize(b, axis=axis, eps=eps)
    return (a_n * b_n).sum(axis=axis)


def cosine_similarity_matrix(queries: Tensor, prototypes: Tensor,
                             eps: float = 1e-12) -> Tensor:
    """Pairwise cosine similarity between query rows and prototype rows.

    Args:
        queries: ``(B, d)`` tensor of query features.
        prototypes: ``(C, d)`` tensor of class prototypes.

    Returns:
        ``(B, C)`` tensor of cosine similarities.
    """
    q = l2_normalize(queries, axis=-1, eps=eps)
    p = l2_normalize(prototypes, axis=-1, eps=eps)
    return q @ p.transpose()


def one_hot(labels: np.ndarray, num_classes: int, dtype=np.float32) -> np.ndarray:
    """Dense one-hot encoding of an integer label vector."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over non-overlapping (or strided) windows."""
    from .conv import AvgPool2dFunction
    stride = stride if stride is not None else kernel_size
    return AvgPool2dFunction.apply(x, kernel_size, stride)


def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    from .conv import MaxPool2dFunction
    stride = stride if stride is not None else kernel_size
    return MaxPool2dFunction.apply(x, kernel_size, stride)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Global average pooling of an NCHW tensor to shape (N, C)."""
    return x.mean(axis=(2, 3))


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0, groups: int = 1) -> Tensor:
    """2-D convolution (NCHW) with optional grouping.

    ``weight`` has shape ``(out_channels, in_channels // groups, kh, kw)``.
    """
    from .conv import Conv2dFunction
    out = Conv2dFunction.apply(x, weight, stride, padding, groups)
    if bias is not None:
        out = out + bias.reshape((1, -1, 1, 1))
    return out
