"""End-to-end O-FSCIL pipeline: pretrain -> metalearn -> deploy -> evaluate.

This orchestration object is what the benchmark harnesses, ablation study and
examples use.  It wires together the training stages with a single
configuration record so ablations only need to flip flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..data.fscil_split import FSCILBenchmark, build_synthetic_fscil
from .evaluate import FSCILResult, evaluate_fscil
from .finetune import FinetuneConfig
from .metalearn import MetalearnConfig, MetalearnResult, metalearn
from .ofscil import OFSCIL, OFSCILConfig
from .pretrain import PretrainConfig, PretrainResult, pretrain


@dataclass
class PipelineConfig:
    """Configuration of a full O-FSCIL training + evaluation run."""

    backbone: str = "mobilenetv2_x4_tiny"
    profile: str = "test"
    pretrain: PretrainConfig = field(default_factory=PretrainConfig)
    metalearn: MetalearnConfig = field(default_factory=MetalearnConfig)
    finetune: FinetuneConfig = field(default_factory=FinetuneConfig)
    use_metalearning: bool = True
    use_finetuning: bool = False
    quantize_int8: bool = False
    prototype_bits: int = 32
    #: evaluate through the batched inference runtime (repro.runtime);
    #: training always runs on the autograd path.
    use_runtime: bool = True
    seed: int = 0

    def with_overrides(self, **kwargs) -> "PipelineConfig":
        return replace(self, **kwargs)


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run."""

    config: PipelineConfig
    model: OFSCIL
    fscil: FSCILResult
    pretrain: PretrainResult
    metalearn: Optional[MetalearnResult] = None
    extras: Dict[str, object] = field(default_factory=dict)


class OFSCILPipeline:
    """Runs the complete O-FSCIL methodology on an FSCIL benchmark."""

    def __init__(self, config: Optional[PipelineConfig] = None,
                 benchmark: Optional[FSCILBenchmark] = None):
        self.config = config or PipelineConfig()
        self.benchmark = benchmark if benchmark is not None else \
            build_synthetic_fscil(self.config.profile, seed=self.config.seed)

    # ------------------------------------------------------------------
    def build_model(self) -> OFSCIL:
        model_config = OFSCILConfig(backbone=self.config.backbone,
                                    prototype_bits=self.config.prototype_bits,
                                    use_runtime=self.config.use_runtime,
                                    seed=self.config.seed)
        return OFSCIL.from_registry(self.config.backbone, model_config,
                                    seed=self.config.seed)

    def train(self, model: Optional[OFSCIL] = None) -> PipelineResult:
        """Run pretraining (and metalearning) on the base session."""
        model = model or self.build_model()
        base_classes = self.benchmark.protocol.base_classes

        pretrain_result = pretrain(model.backbone, model.fcr,
                                   self.benchmark.base_train,
                                   num_classes=base_classes,
                                   config=self.config.pretrain)
        metalearn_result = None
        if self.config.use_metalearning:
            metalearn_result = metalearn(model.backbone, model.fcr,
                                         self.benchmark.base_train,
                                         config=self.config.metalearn)

        if self.config.quantize_int8:
            # Imported lazily: quantization is an optional stage layered on top
            # of the trained float model.
            from ..quant.workflow import quantize_ofscil_model
            model, quant_report = quantize_ofscil_model(
                model, self.benchmark.base_train, seed=self.config.seed)
            extras = {"quantization": quant_report}
        else:
            extras = {}

        fscil_result = evaluate_fscil(model, self.benchmark,
                                      method=self._method_name(),
                                      backbone=self.config.backbone,
                                      use_runtime=self.config.use_runtime)

        if self.config.use_finetuning:
            # Re-run the protocol with per-session on-device FCR fine-tuning
            # (the "+ FT" rows of Table II).  This mutates the model's FCR.
            fscil_ft = evaluate_fscil(model, self.benchmark,
                                      method=self._method_name() + " + FT",
                                      backbone=self.config.backbone,
                                      finetune_config=self.config.finetune,
                                      use_runtime=self.config.use_runtime)
            extras["fscil_after_finetune"] = fscil_ft

        return PipelineResult(config=self.config, model=model, fscil=fscil_result,
                              pretrain=pretrain_result, metalearn=metalearn_result,
                              extras=extras)

    run = train

    # ------------------------------------------------------------------
    def _method_name(self) -> str:
        name = "O-FSCIL"
        if not self.config.use_metalearning:
            name += " (no metalearning)"
        if self.config.quantize_int8:
            name += " [int8]"
        return name
