"""GAP9 profiler: regenerates Table IV and Fig. 2 of the paper.

The profiler composes the deployment cost model (:mod:`repro.hw.deploy`,
:mod:`repro.hw.kernels`) with the power model (:mod:`repro.hw.power`) to
produce latency / power / energy estimates for the four operations the paper
measures per class in a five-shot setting:

* **FCR** — one projection of ``theta_a`` to ``theta_p`` (the 328 kB FCR
  weight matrix is streamed from L3, which dominates its latency),
* **BB inference** — one backbone forward pass,
* **EM update** — learning one new class online: S backbone + FCR passes plus
  the prototype accumulation in the explicit memory,
* **FCR finetune** — the optional on-device fine-tuning (100 epochs of
  sub-batched gradient descent on the FCR).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..models.graph import linear_spec
from ..models.registry import BackboneConfig, get_config
from .deploy import DeploymentPlan, deploy_backbone
from .memory import dma_cycles
from .power import EnergyReport, PowerModel, combine_reports
from .soc import GAP9Config

#: Table IV reference values (per class, five-shot, GAP9 @ 240 MHz / 0.65 V).
PAPER_TABLE4_REFERENCE: Dict[str, Dict[str, Dict[str, float]]] = {
    "FCR": {
        "any": {"time_ms": 3.23, "power_mw": 47.75, "energy_mj": 0.15},
    },
    "BB inference": {
        "mobilenetv2": {"time_ms": 48.10, "power_mw": 43.96, "energy_mj": 2.12},
        "mobilenetv2_x2": {"time_ms": 52.51, "power_mw": 45.12, "energy_mj": 2.40},
        "mobilenetv2_x4": {"time_ms": 99.50, "power_mw": 44.19, "energy_mj": 4.40},
    },
    "EM update": {
        "mobilenetv2": {"time_ms": 256.65, "power_mw": 44.22, "energy_mj": 11.35},
        "mobilenetv2_x2": {"time_ms": 278.70, "power_mw": 45.75, "energy_mj": 12.75},
        "mobilenetv2_x4": {"time_ms": 513.65, "power_mw": 44.29, "energy_mj": 22.75},
    },
    "FCR finetune": {
        "mobilenetv2": {"time_ms": 6171.7, "power_mw": 50.29, "energy_mj": 310.35},
        "mobilenetv2_x2": {"time_ms": 6193.7, "power_mw": 50.33, "energy_mj": 311.75},
        "mobilenetv2_x4": {"time_ms": 6428.7, "power_mw": 50.05, "energy_mj": 321.75},
    },
}

#: Core counts swept in Fig. 2.
FIG2_CORE_COUNTS: Sequence[int] = (1, 2, 4, 8)


@dataclass
class GAP9Profiler:
    """Latency / power / energy profiler of the O-FSCIL deployment."""

    gap9: GAP9Config = field(default_factory=GAP9Config)

    def __post_init__(self):
        self.power_model = PowerModel(self.gap9)
        self._plans: Dict[str, DeploymentPlan] = {}

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    def deployment(self, backbone: str) -> DeploymentPlan:
        if backbone not in self._plans:
            self._plans[backbone] = deploy_backbone(backbone, self.gap9)
        return self._plans[backbone]

    def profile_backbone_inference(self, backbone: str, cores: int = 8) -> EnergyReport:
        """One backbone forward pass (the "BB inference" rows of Table IV)."""
        plan = self.deployment(backbone)
        cost = plan.cost(cores)
        utilization = plan.utilization(cores)
        return self.power_model.report(
            operation="BB inference", backbone=backbone, cycles=cost.total_cycles,
            compute_utilization=utilization["compute"],
            l3_utilization=utilization["l3"], macs=cost.total_macs, cores=cores)

    def profile_batched_inference(self, backbone: str, batch: int = 8,
                                  cores: int = 8) -> EnergyReport:
        """Backbone inference over a micro-batch of ``batch`` samples.

        Models what the host-side batched runtime (:mod:`repro.runtime`)
        exploits on the MCU as well: weight DMA streams and per-layer launch
        overhead are paid once per micro-batch instead of once per sample,
        so every layer runs ``max(batch * compute, weight_dma) + overhead``
        instead of ``batch * (max(compute, weight_dma) + overhead)``.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        plan = self.deployment(backbone)
        cost = plan.cost(cores)
        total_cycles = 0.0
        compute_cycles = 0.0
        l3_cycles = 0.0
        for layer_cost, layer in zip(cost.layers, plan.layers):
            compute = batch * layer_cost.compute_cycles
            cycles = max(compute, layer_cost.dma_cycles) + \
                layer_cost.overhead_cycles
            total_cycles += cycles
            compute_cycles += min(compute, cycles)
            placement = plan.memory_plan.placement(layer.name)
            if placement.weight_level == "L3":
                l3_cycles += min(layer_cost.dma_cycles, cycles)
        return self.power_model.report(
            operation=f"BB batch-{batch}", backbone=backbone,
            cycles=total_cycles,
            compute_utilization=min(compute_cycles / total_cycles, 1.0),
            l3_utilization=min(l3_cycles / total_cycles, 1.0),
            macs=batch * cost.total_macs, cores=cores)

    def batched_speedup(self, backbone: str, batch: int = 8,
                        cores: int = 8) -> float:
        """Per-sample speedup of batch-``batch`` inference over batch-1."""
        per_sample = self.profile_backbone_inference(backbone, cores)
        batched = self.profile_batched_inference(backbone, batch, cores)
        return per_sample.time_ms / (batched.time_ms / batch)

    def fcr_cycles(self, backbone: str, cores: int = 8,
                   batch: int = 1, weights_in_l3: bool = True) -> Dict[str, float]:
        """Cycle breakdown of projecting ``batch`` features through the FCR."""
        config: BackboneConfig = get_config(backbone)
        spec = linear_spec("fcr", config.feature_dim, config.prototype_dim)
        compute_tput = self.gap9.compute.linear_macs_per_cycle * \
            min(cores, self.gap9.worker_cores)
        compute = batch * spec.macs / compute_tput
        weight_bw = self.gap9.memory.l3_l2_bandwidth if weights_in_l3 \
            else self.gap9.memory.l2_l1_bandwidth
        weights = dma_cycles(spec.weight_bytes(8), weight_bw,
                             self.gap9.memory.dma_setup_cycles)
        io_bytes = batch * (spec.input_bytes(8) + spec.output_bytes(8))
        io = dma_cycles(io_bytes, self.gap9.memory.l2_l1_bandwidth,
                        self.gap9.memory.dma_setup_cycles)
        # A single fully connected layer offers no opportunity to double-buffer
        # its (large) weight matrix against compute, so the phases add up.
        total = compute + weights + io + self.gap9.compute.layer_overhead_cycles
        return {"compute": compute, "weights": weights, "io": io, "total": total,
                "macs": batch * spec.macs}

    def profile_fcr(self, backbone: str = "mobilenetv2_x4", cores: int = 8,
                    batch: int = 1) -> EnergyReport:
        """One FCR projection (the "FCR" row of Table IV)."""
        breakdown = self.fcr_cycles(backbone, cores, batch)
        compute_utilization = min(breakdown["compute"] / breakdown["total"], 1.0)
        l3_utilization = min(breakdown["weights"] / breakdown["total"], 1.0)
        return self.power_model.report(
            operation="FCR", backbone=backbone, cycles=breakdown["total"],
            compute_utilization=compute_utilization, l3_utilization=l3_utilization,
            macs=int(breakdown["macs"]), cores=cores)

    def profile_em_update(self, backbone: str, shots: int = 5,
                          cores: int = 8) -> EnergyReport:
        """Learning one new class online (the "EM update" rows of Table IV).

        The class prototype is the average of the FCR features of the S
        shots: S backbone passes, S FCR projections, plus the accumulation
        and normalization of the prototype vector in the EM.
        """
        phases: List[EnergyReport] = []
        for _shot in range(shots):
            phases.append(self.profile_backbone_inference(backbone, cores))
            phases.append(self.profile_fcr(backbone, cores))
        config = get_config(backbone)
        accumulate_cycles = shots * config.prototype_dim / 2.0 + \
            self.gap9.memory.dma_setup_cycles
        phases.append(self.power_model.report(
            operation="EM accumulate", backbone=backbone, cycles=accumulate_cycles,
            compute_utilization=0.2, l3_utilization=0.0, macs=0, cores=1))
        return combine_reports("EM update", backbone, phases)

    def profile_fcr_finetune(self, backbone: str, epochs: int = 100,
                             num_classes: int = 100, sub_batch: int = 64,
                             cores: int = 8) -> EnergyReport:
        """Optional on-device FCR fine-tuning (the "FCR finetune" rows).

        Every epoch runs ``num_classes / sub_batch`` sub-batched gradient
        steps; each step streams the FCR weights (forward + weight update
        write-back) and the activation-memory rows, and computes the forward
        and weight-gradient GEMMs at a reduced efficiency (poor L1 reuse of
        the tiled 1280x256 matrices).
        """
        config = get_config(backbone)
        spec = linear_spec("fcr", config.feature_dim, config.prototype_dim)
        memory = self.gap9.memory
        compute_cfg = self.gap9.compute

        steps_per_epoch = max(1, -(-num_classes // sub_batch))
        # One fused forward / weight-gradient pass over every stored class
        # activation per epoch (the sub-batching only affects how often the
        # FCR weights are re-streamed, not the amount of arithmetic).
        macs_per_epoch = spec.macs * num_classes
        throughput = compute_cfg.linear_macs_per_cycle * \
            min(cores, self.gap9.worker_cores) * compute_cfg.finetune_efficiency
        compute = macs_per_epoch / throughput
        # The FCR weights travel L3 -> L1 for the forward pass and back after
        # the update, once per sub-batch (B / N accesses per batch).
        weight_stream = steps_per_epoch * dma_cycles(
            2 * spec.weight_bytes(8), memory.l3_l2_bandwidth,
            memory.dma_setup_cycles)
        activation_stream = dma_cycles(
            num_classes * (config.feature_dim + config.prototype_dim),
            memory.l2_l1_bandwidth, memory.dma_setup_cycles)
        epoch_cycles = max(compute, weight_stream) + activation_stream + \
            steps_per_epoch * compute_cfg.layer_overhead_cycles
        total_cycles = epochs * epoch_cycles
        total_macs = epochs * macs_per_epoch

        l3_utilization = min(weight_stream / epoch_cycles, 1.0)
        report = self.power_model.report(
            operation="FCR finetune", backbone=backbone, cycles=total_cycles,
            compute_utilization=1.0,
            l3_utilization=l3_utilization,
            macs=int(total_macs), cores=cores)
        return report

    # ------------------------------------------------------------------
    # Paper artefacts
    # ------------------------------------------------------------------
    def table4(self, backbones: Iterable[str] = ("mobilenetv2", "mobilenetv2_x2",
                                                 "mobilenetv2_x4"),
               shots: int = 5, finetune_epochs: int = 100,
               cores: int = 8) -> List[EnergyReport]:
        """All rows of Table IV."""
        backbones = list(backbones)
        rows: List[EnergyReport] = [self.profile_fcr(backbones[-1], cores)]
        rows += [self.profile_backbone_inference(name, cores) for name in backbones]
        rows += [self.profile_em_update(name, shots, cores) for name in backbones]
        rows += [self.profile_fcr_finetune(name, finetune_epochs, cores=cores)
                 for name in backbones]
        return rows

    def fig2_macs_per_cycle(self, backbones: Iterable[str] = (
            "mobilenetv2", "mobilenetv2_x2", "mobilenetv2_x4"),
            core_counts: Sequence[int] = FIG2_CORE_COUNTS
            ) -> Dict[str, Dict[str, List[float]]]:
        """MACs/cycle versus active cores for backbone, FCR and fine-tuning."""
        result: Dict[str, Dict[str, List[float]]] = {
            "backbone": {}, "fcr": {}, "finetune": {}}
        for name in backbones:
            plan = self.deployment(name)
            result["backbone"][name] = [plan.macs_per_cycle(cores)
                                        for cores in core_counts]
        reference = list(backbones)[-1]
        result["fcr"][reference] = []
        result["finetune"][reference] = []
        for cores in core_counts:
            fcr = self.fcr_cycles(reference, cores)
            result["fcr"][reference].append(fcr["macs"] / fcr["total"])
            finetune = self.profile_fcr_finetune(reference, epochs=1, cores=cores)
            result["finetune"][reference].append(finetune.macs_per_cycle)
        return result


def format_table4(rows: List[EnergyReport],
                  reference: Optional[Dict] = None) -> str:
    """Render Table IV rows (optionally side by side with the paper values)."""
    reference = reference if reference is not None else PAPER_TABLE4_REFERENCE
    header = (f"{'Operation':<14} {'Backbone':<16} {'Time [ms]':>10} "
              f"{'Power [mW]':>11} {'Energy [mJ]':>12} {'paper t':>9} {'paper E':>9}")
    lines = [header, "-" * len(header)]
    for row in rows:
        paper = reference.get(row.operation, {})
        paper_row = paper.get(row.backbone, paper.get("any", {}))
        paper_time = paper_row.get("time_ms")
        paper_energy = paper_row.get("energy_mj")
        lines.append(
            f"{row.operation:<14} {row.backbone:<16} {row.time_ms:>10.2f} "
            f"{row.power_mw:>11.2f} {row.energy_mj:>12.3f} "
            f"{paper_time if paper_time is not None else float('nan'):>9} "
            f"{paper_energy if paper_energy is not None else float('nan'):>9}")
    return "\n".join(lines)
