#!/usr/bin/env python3
"""Quickstart: train O-FSCIL on the synthetic FSCIL benchmark and learn new
classes online.

This walks through the complete life cycle of the paper's system on a
laptop-friendly scale:

1. build the synthetic CIFAR100 stand-in with the FSCIL split (base session +
   incremental 5-way 5-shot sessions),
2. pretrain the MobileNetV2 backbone + FCR with cross-entropy, feature
   orthogonality regularization and Mixup/CutMix,
3. metalearn with the multi-margin loss,
4. learn all incremental sessions *online* (one pass per class) and report
   the per-session accuracy — the Table II protocol.

Run:  python examples/quickstart.py  [--profile test|laptop] [--epochs N]
"""

import argparse
import time

from repro.core import (
    MetalearnConfig,
    OFSCILPipeline,
    PipelineConfig,
    PretrainConfig,
    format_session_table,
    raw_pixel_ncm,
)
from repro.data import build_synthetic_fscil


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="test", choices=("test", "laptop"),
                        help="FSCIL data profile (test = miniature, laptop = "
                             "full 60+8x5-way protocol)")
    parser.add_argument("--backbone", default="mobilenetv2_x4_tiny",
                        help="backbone registry name (see repro.models.list_configs())")
    parser.add_argument("--epochs", type=int, default=10, help="pretraining epochs")
    parser.add_argument("--metalearn-iters", type=int, default=10,
                        help="metalearning iterations")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Building synthetic FSCIL benchmark (profile={args.profile}) ...")
    benchmark = build_synthetic_fscil(args.profile, seed=args.seed)
    protocol = benchmark.protocol
    print(f"  {protocol.base_classes} base classes, {protocol.num_sessions} sessions "
          f"of {protocol.ways}-way {protocol.shots}-shot, "
          f"{protocol.image_size}x{protocol.image_size} images")

    config = PipelineConfig(
        backbone=args.backbone,
        profile=args.profile,
        pretrain=PretrainConfig(epochs=args.epochs, batch_size=32,
                                learning_rate=0.12, seed=args.seed),
        metalearn=MetalearnConfig(iterations=args.metalearn_iters, meta_shots=5,
                                  queries_per_class=2, learning_rate=0.02,
                                  seed=args.seed),
        seed=args.seed)

    print(f"Training O-FSCIL ({args.backbone}): {args.epochs} pretraining epochs, "
          f"{args.metalearn_iters} metalearning iterations ...")
    start = time.time()
    pipeline = OFSCILPipeline(config, benchmark=benchmark)
    result = pipeline.run()
    print(f"  done in {time.time() - start:.1f}s; final pretraining accuracy "
          f"{100 * result.pretrain.final_accuracy:.1f}%")

    ncm = raw_pixel_ncm(benchmark)
    print("\nPer-session accuracy (the Table II protocol):")
    print(format_session_table([ncm, result.fscil]))

    model = result.model
    print(f"\nExplicit memory now stores {model.memory.num_classes} class prototypes "
          f"({model.memory_footprint_bytes() / 1e3:.1f} kB at "
          f"{model.memory.bits}-bit precision).")
    print("Learning one more (hypothetical) class would require a single forward "
          "pass over its few shots — no gradient computation on device.")

    # Deploy-time serving numbers: the batched inference runtime vs the
    # eager per-sample autograd path.
    predictor = model.runtime_predictor()
    images = benchmark.test.images
    start = time.time()
    predictor.predict(images)
    batched_rate = len(images) / (time.time() - start)
    probe = images[: min(16, len(images))]
    start = time.time()
    for sample in probe:
        model.predict(sample[None], use_runtime=False)
    eager_rate = len(probe) / (time.time() - start)
    print(f"\nBatched runtime serves {batched_rate:.0f} samples/s "
          f"(eager per-sample path: {eager_rate:.0f} samples/s, "
          f"{batched_rate / eager_rate:.1f}x speedup).")


if __name__ == "__main__":
    main()
