"""The O-FSCIL model: frozen backbone + FCR + expandable Explicit Memory.

This is the deployable object of the paper.  After server-side pretraining
and metalearning (see :mod:`repro.core.pretrain` and
:mod:`repro.core.metalearn`) the backbone and FCR are frozen; new classes are
learned *online* — a single forward pass over the S labelled shots, averaged
into a prototype that is appended to the EM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .. import nn
from ..data.dataset import ArrayDataset
from ..models.heads import FullyConnectedReductor
from ..models.registry import BackboneConfig, get_config
from ..nn.tensor import Tensor
from .explicit_memory import ExplicitMemory


@dataclass
class OFSCILConfig:
    """Hyper-parameters of the deployable O-FSCIL model."""

    backbone: str = "mobilenetv2_x4_tiny"
    prototype_bits: int = 32
    feature_batch_size: int = 64
    relu_sharpening: bool = True
    #: route inference (feature extraction, projection, prediction) through
    #: the batched runtime (:mod:`repro.runtime`) instead of the per-batch
    #: autograd modules; training always uses the autograd path.
    use_runtime: bool = True
    #: numeric mode of the compiled runtime: ``"float32"`` (default) or
    #: ``"int8"`` (integer kernels; requires a model prepared by
    #: ``quantize_ofscil_model``, which sets this automatically).
    runtime_mode: str = "float32"
    seed: int = 0


class OFSCIL(nn.Module):
    """Backbone + FCR + Explicit Memory, with online class learning.

    Args:
        backbone: a feature-extractor module exposing ``output_dim``.
        fcr: the fully connected reductor mapping ``d_a`` to ``d_p``.
        config: runtime configuration (prototype precision, batch size, ...).
    """

    def __init__(self, backbone: nn.Module, fcr: FullyConnectedReductor,
                 config: Optional[OFSCILConfig] = None):
        super().__init__()
        self.config = config or OFSCILConfig()
        self.backbone = backbone
        self.fcr = fcr
        self.memory = ExplicitMemory(dim=fcr.out_features,
                                     bits=self.config.prototype_bits)
        # Average backbone activations per class, kept for optional on-device
        # FCR fine-tuning (Section V-B "activation memory").
        self.activation_memory: Dict[int, np.ndarray] = {}
        self._predictor = None

    # ------------------------------------------------------------------
    # Batched inference runtime
    # ------------------------------------------------------------------
    def runtime_predictor(self):
        """The model's cached :class:`~repro.runtime.BatchedPredictor`.

        Compiled lazily on first use; the predictor recompiles itself when
        backbone weights are rebound (training, quantization) and refreshes
        its prototype cache through the memory's version counter.
        """
        mode = getattr(self.config, "runtime_mode", "float32")
        if self._predictor is None or self._predictor.mode != mode:
            from ..runtime import BatchedPredictor
            self._predictor = BatchedPredictor(
                self, micro_batch=self.config.feature_batch_size, mode=mode)
        return self._predictor

    def serve(self, num_workers: int = 2, **kwargs):
        """Spin up a sharded multi-worker :class:`~repro.serve.Server`.

        The model is snapshotted (compiled plans + prototype state) and
        replicated across ``num_workers`` worker processes; the returned
        server exposes ``predict`` / ``similarities`` / ``learn_class`` and
        keeps worker prototype replicas in sync with this model's memory.
        Use as a context manager (or call ``close()``) to stop the workers.
        """
        from ..serve import Server
        return Server(self, num_workers=num_workers, **kwargs)

    def _runtime_enabled(self, use_runtime: Optional[bool]) -> bool:
        return self.config.use_runtime if use_runtime is None else use_runtime

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_registry(cls, name: str, config: Optional[OFSCILConfig] = None,
                      seed: int = 0) -> "OFSCIL":
        """Build an O-FSCIL model from a named backbone configuration."""
        backbone_config: BackboneConfig = get_config(name)
        backbone = backbone_config.build(seed=seed)
        fcr = backbone_config.build_fcr(seed=seed + 1)
        config = config or OFSCILConfig(backbone=name, seed=seed)
        return cls(backbone, fcr, config)

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------
    @property
    def prototype_dim(self) -> int:
        return self.fcr.out_features

    @property
    def feature_dim(self) -> int:
        return self.fcr.in_features

    def extract_backbone_features(self, images: np.ndarray,
                                  use_runtime: Optional[bool] = None
                                  ) -> np.ndarray:
        """Compute ``theta_a`` for a batch of images (no gradients).

        Goes through the compiled batched runtime unless disabled via
        ``use_runtime`` (or ``config.use_runtime``); the eager fallback runs
        the autograd modules under ``no_grad``.
        """
        if self._runtime_enabled(use_runtime):
            return self.runtime_predictor().extract_backbone_features(images)
        images = np.asarray(images, dtype=np.float32)
        outputs: List[np.ndarray] = []
        batch = self.config.feature_batch_size
        self.backbone.eval()
        with nn.no_grad():
            for start in range(0, len(images), batch):
                chunk = Tensor(images[start:start + batch])
                outputs.append(self.backbone(chunk).data)
        return np.concatenate(outputs, axis=0)

    def project(self, theta_a: np.ndarray,
                use_runtime: Optional[bool] = None) -> np.ndarray:
        """Map backbone features ``theta_a`` to prototypical features ``theta_p``."""
        if self._runtime_enabled(use_runtime):
            return self.runtime_predictor().project(theta_a)
        self.fcr.eval()
        with nn.no_grad():
            return self.fcr(Tensor(np.asarray(theta_a, dtype=np.float32))).data

    def embed(self, images: np.ndarray,
              use_runtime: Optional[bool] = None) -> np.ndarray:
        """Full feature path: images -> ``theta_p``."""
        return self.project(
            self.extract_backbone_features(images, use_runtime=use_runtime),
            use_runtime=use_runtime)

    def forward(self, images) -> Tensor:
        """Differentiable forward pass (used by the server-side training)."""
        if not isinstance(images, Tensor):
            images = Tensor(np.asarray(images, dtype=np.float32))
        return self.fcr(self.backbone(images))

    # ------------------------------------------------------------------
    # Online learning (Fig. 1b)
    # ------------------------------------------------------------------
    def learn_class(self, images: np.ndarray, class_id: int,
                    use_runtime: Optional[bool] = None) -> np.ndarray:
        """Learn one class from its labelled shots in a single pass.

        Also updates the activation memory with the average ``theta_a`` of
        the shots, enabling optional FCR fine-tuning later.
        """
        theta_a = self.extract_backbone_features(images, use_runtime=use_runtime)
        theta_p = self.project(theta_a, use_runtime=use_runtime)
        prototype = self.memory.update_class(int(class_id), theta_p)
        self.activation_memory[int(class_id)] = theta_a.mean(axis=0).astype(np.float32)
        return prototype

    def learn_session(self, dataset: ArrayDataset,
                      use_runtime: Optional[bool] = None) -> List[int]:
        """Learn every class present in a support dataset (one session)."""
        learned = []
        for class_id in dataset.classes:
            mask = dataset.labels == class_id
            self.learn_class(dataset.images[mask], int(class_id),
                             use_runtime=use_runtime)
            learned.append(int(class_id))
        return learned

    def learn_base_session(self, dataset: ArrayDataset,
                           max_per_class: Optional[int] = None,
                           seed: int = 0,
                           use_runtime: Optional[bool] = None) -> List[int]:
        """Populate the EM with base-class prototypes after metalearning."""
        rng = np.random.default_rng(seed)
        learned = []
        for class_id in dataset.classes:
            indices = np.flatnonzero(dataset.labels == class_id)
            if max_per_class is not None and len(indices) > max_per_class:
                indices = rng.choice(indices, size=max_per_class, replace=False)
            self.learn_class(dataset.images[indices], int(class_id),
                             use_runtime=use_runtime)
            learned.append(int(class_id))
        return learned

    # ------------------------------------------------------------------
    # Inference (Fig. 1a)
    # ------------------------------------------------------------------
    def classify_features(self, theta_p: np.ndarray,
                          class_ids: Optional[Iterable[int]] = None,
                          use_runtime: Optional[bool] = None) -> np.ndarray:
        if self._runtime_enabled(use_runtime):
            # The predictor normalises the prototype matrix once per memory
            # version instead of once per query batch.
            return self.runtime_predictor().predict_features(theta_p, class_ids)
        return self.memory.predict(theta_p, class_ids)

    def predict(self, images: np.ndarray,
                class_ids: Optional[Iterable[int]] = None,
                use_runtime: Optional[bool] = None) -> np.ndarray:
        """Classify images against the prototypes currently stored in the EM."""
        return self.classify_features(self.embed(images, use_runtime=use_runtime),
                                      class_ids, use_runtime=use_runtime)

    def similarity_scores(self, images: np.ndarray,
                          class_ids: Optional[Iterable[int]] = None,
                          use_runtime: Optional[bool] = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
        features = self.embed(images, use_runtime=use_runtime)
        if self._runtime_enabled(use_runtime):
            sims, ids = self.runtime_predictor().similarities_from_features(
                features, class_ids)
        else:
            sims, ids = self.memory.similarities(features, class_ids)
        if self.config.relu_sharpening:
            sims = np.maximum(sims, 0.0)
        return sims, ids

    def accuracy(self, dataset: ArrayDataset,
                 class_ids: Optional[Iterable[int]] = None,
                 use_runtime: Optional[bool] = None) -> float:
        """Top-1 accuracy of nearest-prototype classification on a dataset."""
        if len(dataset) == 0:
            return float("nan")
        predictions = self.predict(dataset.images, class_ids,
                                   use_runtime=use_runtime)
        return float((predictions == dataset.labels).mean())

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def freeze_feature_extractor(self) -> None:
        """Freeze backbone and FCR (the deployment configuration)."""
        self.backbone.freeze()
        self.fcr.freeze()

    def memory_footprint_bytes(self, num_classes: Optional[int] = None) -> float:
        return self.memory.memory_bytes(num_classes)
