#!/usr/bin/env python3
"""Sharded multi-worker serving of an O-FSCIL model (`repro.serve`).

Production deployment story on top of the batched runtime: the trained model
is snapshotted into a picklable plan + prototype state, replicated across a
pool of worker processes, and served behind a dynamic batcher that coalesces
single-sample requests into micro-batches under a latency budget.  The demo

1. briefly trains a tiny model and learns the base-session prototypes,
2. starts a `Server` with N worker shards (`model.serve(N)`),
3. checks bit-for-bit parity of sharded vs single-process prediction,
4. measures synchronous batch throughput at 1 worker vs N workers,
5. floods the dynamic batcher with single-sample requests and prints the
   coalesced batch-size histogram and the request-latency percentiles,
6. demonstrates admission control: a server with a tiny queue budget sheds
   the overflow of a burst with `ServerOverloaded` instead of queueing
   unboundedly,
7. learns a new class online through the server (prototypes broadcast to
   every worker replica) and verifies parity again.

Tensor traffic between the coordinator and the workers rides zero-copy
shared-memory rings (see `repro.serve.transport`); a worker killed
mid-flight fails fast and the pool routes around it.

Run:  python examples/serving.py [--workers 4] [--epochs 6]
"""

import argparse
import time

import numpy as np

from repro.core import OFSCIL, OFSCILConfig, PretrainConfig, pretrain
from repro.data import build_synthetic_fscil
from repro.serve import Server, ServerOverloaded


def batch_rate(model: OFSCIL, num_workers: int, images: np.ndarray) -> float:
    """Synchronous-path serving throughput at ``num_workers`` shards."""
    with Server(model, num_workers=num_workers) as server:
        server.predict(images[:64])                 # warm plans and caches
        start = time.perf_counter()
        server.predict(images)
        return images.shape[0] / (time.perf_counter() - start)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backbone", default="mobilenetv2_x4_tiny")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--requests", type=int, default=192,
                        help="single-sample requests for the batcher flood")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("=== Train briefly and learn the base session ===")
    benchmark = build_synthetic_fscil("test", seed=args.seed)
    model = OFSCIL.from_registry(args.backbone,
                                 OFSCILConfig(backbone=args.backbone),
                                 seed=args.seed)
    pretrain(model.backbone, model.fcr, benchmark.base_train,
             num_classes=benchmark.protocol.base_classes,
             config=PretrainConfig(epochs=args.epochs, batch_size=32,
                                   learning_rate=0.12, seed=args.seed))
    model.freeze_feature_extractor()
    model.learn_base_session(benchmark.base_train)
    predictor = model.runtime_predictor()
    queries = benchmark.test.images

    print(f"\n=== Serve with {args.workers} worker shard(s) ===")
    with model.serve(num_workers=args.workers) as server:
        labels = server.predict(queries)
        exact = bool(np.array_equal(labels, predictor.predict(queries)))
        print(f"sharded vs single-process predictions bit-for-bit: {exact}")

        print("\n--- dynamic batcher: single-sample request flood ---")
        start = time.perf_counter()
        futures = [server.submit(image)
                   for image in queries[:args.requests]]
        results = [future.result(timeout=300) for future in futures]
        elapsed = time.perf_counter() - start
        stats = server.stats_dict()
        print(f"{len(results)} requests in {elapsed:.2f}s "
              f"({len(results) / elapsed:.0f} samples/s) | "
              f"batch-size histogram: {stats['batch_size_histogram']} | "
              f"max queue depth: {stats['max_queue_depth']}")
        print(f"batch latency p50/p99: {stats['batch_latency_p50_ms']}/"
              f"{stats['batch_latency_p99_ms']} ms | "
              f"shed rate: {stats['shed_rate']:.3f}")

        print("\n--- online learning through the server ---")
        session = benchmark.sessions[0]
        class_id = int(session.class_ids[0])
        mask = session.support.labels == class_id
        server.learn_class(session.support.images[mask], class_id)
        versions = [record["prototype_version"]
                    for record in server.worker_stats()]
        print(f"learned class {class_id}; memory version "
              f"{model.memory.version} acked by workers: {versions}")
        exact = bool(np.array_equal(server.predict(queries),
                                    predictor.predict(queries)))
        print(f"parity after online learning: {exact}")

    print("\n=== Admission control: bounded queue sheds the overflow ===")
    with Server(model, num_workers=1, max_pending=16) as server:
        admitted, shed = [], 0
        for image in queries[:64]:
            try:
                admitted.append(server.submit(image))
            except ServerOverloaded:
                shed += 1
        for future in admitted:
            future.result(timeout=300)
        print(f"burst of 64 with max_pending=16: {len(admitted)} admitted, "
              f"{shed} shed (recorded shed rate "
              f"{server.stats.as_dict()['shed_rate']:.3f})")

    print("\n=== Throughput scaling: 1 worker vs "
          f"{args.workers} workers ===")
    single = batch_rate(model, 1, queries)
    multi = batch_rate(model, args.workers, queries)
    print(f"  1 worker : {single:7.0f} samples/s")
    print(f"  {args.workers} workers: {multi:7.0f} samples/s "
          f"({multi / single:.2f}x)")
    print("(scaling needs real cores; see BENCH_serve.json for the "
          "recorded trajectory)")


if __name__ == "__main__":
    main()
