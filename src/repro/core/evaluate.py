"""FSCIL evaluation protocol (session accuracies, Table II rows).

After every session the model is evaluated on the test samples of *all*
classes seen so far, exactly as the CIFAR100 FSCIL benchmark prescribes.  The
result object records per-session accuracy and the session average — the two
quantities reported in Table II and Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..data.fscil_split import FSCILBenchmark
from .finetune import FinetuneConfig, finetune_fcr
from .ofscil import OFSCIL


@dataclass
class FSCILResult:
    """Per-session accuracies of one FSCIL run."""

    method: str
    backbone: str
    session_accuracy: List[float] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def average_accuracy(self) -> float:
        """Mean accuracy over all evaluated sessions (the paper's "Avg")."""
        if not self.session_accuracy:
            return float("nan")
        return float(np.mean(self.session_accuracy))

    @property
    def base_accuracy(self) -> float:
        return self.session_accuracy[0] if self.session_accuracy else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.session_accuracy[-1] if self.session_accuracy else float("nan")

    @property
    def forgetting(self) -> float:
        """Accuracy drop between the base session and the final session."""
        if len(self.session_accuracy) < 2:
            return 0.0
        return self.base_accuracy - self.final_accuracy

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {"method": self.method, "backbone": self.backbone}
        for index, accuracy in enumerate(self.session_accuracy):
            row[f"session_{index}"] = accuracy
        row["average"] = self.average_accuracy
        row.update(self.metadata)
        return row


def evaluate_fscil(model: OFSCIL, benchmark: FSCILBenchmark,
                   method: str = "O-FSCIL", backbone: str = "",
                   base_max_per_class: Optional[int] = None,
                   finetune_config: Optional[FinetuneConfig] = None,
                   session_callback: Optional[Callable[[int, float], None]] = None,
                   use_runtime: Optional[bool] = None) -> FSCILResult:
    """Run the complete FSCIL protocol with an (already trained) O-FSCIL model.

    The model's EM is reset, base-class prototypes are learned from the base
    session training data, and each incremental session is learned online
    from its few-shot support set.  After every session the model is
    evaluated on the union of all seen classes.

    Args:
        model: trained O-FSCIL model (backbone + FCR are left untouched
            unless ``finetune_config`` is given).
        benchmark: the FSCIL benchmark (splits + test data).
        method / backbone: labels recorded in the result.
        base_max_per_class: optionally limit how many base-session samples per
            class feed the base prototypes (the paper uses the full base set).
        finetune_config: when provided, the optional on-device FCR fine-tuning
            (Section V-B) is run after every session before evaluation — this
            is the "+ FT" configuration of Table II and mutates the FCR.
        session_callback: optional hook called with (session, accuracy).
        use_runtime: route evaluation through the batched inference runtime
            (:mod:`repro.runtime`); defaults to the model's configuration.
    """
    model.memory.reset()
    model.activation_memory.clear()
    model.freeze_feature_extractor()

    runtime_on = model.config.use_runtime if use_runtime is None else use_runtime
    predictor = model.runtime_predictor() if runtime_on else None

    result = FSCILResult(method=method, backbone=backbone or model.config.backbone)

    # The backbone is frozen for the whole protocol, so its test-set features
    # can be extracted once; only the (cheap) FCR projection is re-applied per
    # session, which also stays correct when fine-tuning modifies the FCR.
    test_theta_a = model.extract_backbone_features(benchmark.test.images,
                                                   use_runtime=runtime_on)
    test_labels = benchmark.test.labels

    def evaluate_session(session_index: int) -> float:
        seen = benchmark.protocol.seen_classes(session_index)
        mask = np.isin(test_labels, seen)
        if not mask.any():
            return float("nan")
        if predictor is not None:
            # Whole-session batched path: one projection GEMM plus one
            # similarity GEMM against the cached prototype matrix.
            theta_p = predictor.project(test_theta_a[mask])
            predictions = predictor.predict_features(theta_p)
        else:
            theta_p = model.project(test_theta_a[mask], use_runtime=False)
            predictions = model.memory.predict(theta_p)
        return float((predictions == test_labels[mask]).mean())

    model.learn_base_session(benchmark.base_train, max_per_class=base_max_per_class)
    if finetune_config is not None:
        finetune_fcr(model, finetune_config)
    accuracy = evaluate_session(0)
    result.session_accuracy.append(accuracy)
    if session_callback:
        session_callback(0, accuracy)

    for session_index in range(1, benchmark.num_sessions + 1):
        session = benchmark.session(session_index)
        model.learn_session(session.support)
        if finetune_config is not None:
            finetune_fcr(model, finetune_config)
        accuracy = evaluate_session(session_index)
        result.session_accuracy.append(accuracy)
        if session_callback:
            session_callback(session_index, accuracy)

    result.metadata["num_classes_final"] = int(model.memory.num_classes)
    result.metadata["prototype_bits"] = int(model.memory.bits)
    result.metadata["finetuned"] = finetune_config is not None
    result.metadata["runtime"] = bool(runtime_on)
    return result


def evaluate_with_predictor(predict: Callable[[np.ndarray, np.ndarray], np.ndarray],
                            benchmark: FSCILBenchmark, method: str,
                            backbone: str = "") -> FSCILResult:
    """Evaluate an arbitrary predictor under the FSCIL protocol.

    ``predict(images, allowed_class_ids)`` must return predicted labels; this
    is used by the baselines (e.g. raw-pixel NCM) that are not OFSCIL models.
    """
    result = FSCILResult(method=method, backbone=backbone)
    for session_index in range(0, benchmark.num_sessions + 1):
        test = benchmark.test_upto(session_index)
        seen = benchmark.protocol.seen_classes(session_index)
        predictions = predict(test.images, seen)
        result.session_accuracy.append(float((predictions == test.labels).mean()))
    return result


def format_session_table(results: List[FSCILResult], precision: int = 2) -> str:
    """Format a list of results as a Table II-style text table."""
    if not results:
        return "(no results)"
    num_sessions = max(len(result.session_accuracy) for result in results)
    header = ["Method", "Backbone"] + [str(index) for index in range(num_sessions)] + ["Avg."]
    rows = [header]
    for result in results:
        cells = [result.method, result.backbone]
        cells += [f"{100 * accuracy:.{precision}f}" for accuracy in result.session_accuracy]
        cells += [""] * (num_sessions - len(result.session_accuracy))
        cells += [f"{100 * result.average_accuracy:.{precision}f}"]
        rows.append(cells)
    widths = [max(len(row[column]) for row in rows) for column in range(len(header))]
    lines = []
    for row_index, row in enumerate(rows):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line)
        if row_index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)
