"""SSA-style typed graph IR over flat inference plans.

The compiler (:mod:`repro.runtime.compiler`) emits a *flat* plan — a linear
:class:`~repro.runtime.plan.Step` list over a register file.  That form is
what the executor wants, but it is a poor substrate for optimization: a pass
that wants to fuse across a residual branch has to rebuild producer/consumer
relationships from register names on every sweep, and nothing stops a buggy
rewrite from orphaning a register until execution fails.

This module promotes the flat plan to a small SSA graph:

* :class:`Value` — one immutable register definition: its register name
  (preserved bit-for-bit through round-trips, so memory plans and snapshots
  keyed by register names stay valid), its inferred dtype, the quantization
  ``scale``/``zero_point`` when the value is int8 codes, the per-sample
  shape when one has been recorded, and explicit ``producer`` / ``consumers``
  edges.
* :class:`Node` — one typed operation: the op, its attrs/arrays, and its
  input/output :class:`Value` edges.
* :class:`Graph` — the nodes in topological (= execution) order with
  :meth:`Graph.from_plan` / :meth:`Graph.to_plan` converters,
  def-use :meth:`~Graph.validate` invariants, mutation helpers that keep the
  edge lists consistent, and a Graphviz :meth:`~Graph.to_dot` dump.

Rewrites run through :class:`RewriteRule`: each rule states its legality
precondition (checked against the live def-use edges immediately before
every application) and the whole graph re-validates after every rule run, so
an illegal rewrite fails loudly at optimization time instead of silently
corrupting the plan.  The rules themselves live in
:mod:`repro.runtime.rewrites`.

Round-tripping is lossless by construction: ``Graph.from_plan(plan)
.to_plan()`` reproduces the step sequence — same ops, same register names,
same attrs, the same array *objects* — so a graph built and immediately
lowered executes bit-identically to the original plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .plan import InferencePlan, Step


class GraphInvariantError(RuntimeError):
    """A def-use invariant of the SSA graph does not hold."""


# ---------------------------------------------------------------------------
# Values and nodes
# ---------------------------------------------------------------------------
@dataclass(eq=False)
class Value:
    """One SSA register definition.

    ``consumers`` holds one entry per *consuming edge*: a node reading this
    value at two input positions appears twice, so ``len(consumers)`` (plus
    one if the value is the graph output) is the exact use count the
    single-use fusion preconditions need.
    """

    name: str                                 # flat-plan register name
    dtype: Optional[str] = None               # "float32" | "int8" | None
    #: quantization scale when the value is int8 codes on a single grid
    #: (per-channel-quantized conv outputs carry ``None``).
    scale: Optional[float] = None
    #: symmetric quantization throughout the runtime — always 0 today, but
    #: first-class so asymmetric grids have a home in the IR.
    zero_point: int = 0
    shape: Optional[Tuple[int, ...]] = None   # per-sample shape, when known
    producer: Optional["Node"] = None         # None for the graph input
    consumers: List["Node"] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dtype = self.dtype or "?"
        scale = f"@{self.scale:g}" if self.scale is not None else ""
        return f"Value({self.name}: {dtype}{scale})"


@dataclass(eq=False)
class Node:
    """One typed operation of the graph."""

    op: str
    name: str
    inputs: List[Value]
    output: Value
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    attrs: Dict[str, object] = field(default_factory=dict)
    module: Optional[object] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ins = ",".join(v.name for v in self.inputs)
        return f"Node({self.op!r}, {self.name!r}, {ins} -> {self.output.name})"


#: Ops whose output lives on the int8 code grid of their ``scale`` attr.
#: Every one of them clamps to ``[-127, 127]`` (symmetric, -128 excluded),
#: which is exactly the range the same-scale quantize∘dequantize identity
#: rewrite needs to be bit-exact.
_INT8_SCALED_OPS = ("quantize", "qrequantize")

#: Ops whose output dtype (and grid) mirrors their first input: shape-only
#: or order-only transforms of the incoming codes/values.
_DTYPE_INHERIT_OPS = ("flatten", "max_pool")

#: Ops producing float32 regardless of input dtype.
_FLOAT_OPS = ("conv", "linear", "bn", "act", "global_pool", "avg_pool",
              "dequantize", "requantize", "qconv_dequant", "qlinear",
              "qglobal_pool")


def _infer_value_type(op: str, attrs: Dict[str, object],
                      inputs: List[Value]) -> Tuple[Optional[str],
                                                    Optional[float]]:
    """(dtype, scale) of an op's output, from op semantics + input types."""
    if op in _INT8_SCALED_OPS:
        return "int8", float(attrs["scale"])
    if op == "qconv":                    # per-channel requantized codes
        return "int8", None
    if op in ("add", "qconv_add"):
        out_scale = attrs.get("out_scale")
        if out_scale is not None:
            return "int8", float(out_scale)
        return "float32", None
    if op in _DTYPE_INHERIT_OPS and inputs:
        return inputs[0].dtype, inputs[0].scale
    if op in _FLOAT_OPS:
        return "float32", None
    return None, None                    # opaque / unknown


# ---------------------------------------------------------------------------
# Graph
# ---------------------------------------------------------------------------
class Graph:
    """A flat plan as an SSA def-use graph (nodes in execution order)."""

    def __init__(self, name: str, input_value: Value,
                 optimized: bool = False):
        self.name = name
        self.input = input_value
        self.output: Value = input_value
        self.nodes: List[Node] = []
        self.optimized = optimized

    # ------------------------------------------------------------------
    # Construction / lowering
    # ------------------------------------------------------------------
    @classmethod
    def from_plan(cls, plan: InferencePlan,
                  shapes: Optional[Dict[str, Tuple[int, ...]]] = None
                  ) -> "Graph":
        """Build the SSA graph of ``plan`` (types inferred, edges wired).

        ``shapes`` optionally maps register names to known per-sample shapes
        (e.g. the record an engine collected on its first chunk) — purely
        informational, used by :meth:`to_dot` labels.

        Raises:
            GraphInvariantError: if the plan is not in SSA form (a register
                redefined, or read before any step defines it).
        """
        shapes = shapes or {}
        graph = cls(plan.name, Value(name=plan.input_register,
                                     dtype="float32",
                                     shape=shapes.get(plan.input_register)),
                    optimized=plan.optimized)
        values: Dict[str, Value] = {plan.input_register: graph.input}
        for step in plan.steps:
            inputs = []
            for register in step.inputs:
                value = values.get(register)
                if value is None:
                    raise GraphInvariantError(
                        f"step {step.name!r} reads register {register!r} "
                        f"before any step defines it")
                inputs.append(value)
            if step.output in values:
                raise GraphInvariantError(
                    f"step {step.name!r} redefines register "
                    f"{step.output!r}; plans must be in SSA form")
            dtype, scale = _infer_value_type(step.op, step.attrs, inputs)
            output = Value(name=step.output, dtype=dtype, scale=scale,
                           shape=shapes.get(step.output))
            node = Node(op=step.op, name=step.name, inputs=inputs,
                        output=output, arrays=step.arrays, attrs=step.attrs,
                        module=step.module)
            output.producer = node
            for value in inputs:
                value.consumers.append(node)
            graph.nodes.append(node)
            values[step.output] = output
        out = values.get(plan.output_register)
        if out is None:
            raise GraphInvariantError(
                f"plan output register {plan.output_register!r} is never "
                f"defined")
        graph.output = out
        return graph

    def to_plan(self, optimized: Optional[bool] = None,
                pass_stats: Optional[Dict[str, int]] = None) -> InferencePlan:
        """Lower back to a flat plan, preserving register names and arrays."""
        steps = [Step(op=node.op, name=node.name,
                      inputs=tuple(v.name for v in node.inputs),
                      output=node.output.name, arrays=node.arrays,
                      attrs=node.attrs, module=node.module)
                 for node in self.nodes]
        plan = InferencePlan(steps=steps, input_register=self.input.name,
                             output_register=self.output.name,
                             name=self.name,
                             optimized=self.optimized if optimized is None
                             else optimized)
        if pass_stats is not None:
            plan.pass_stats = dict(pass_stats)
        return plan

    # ------------------------------------------------------------------
    # Def-use queries and mutation helpers
    # ------------------------------------------------------------------
    def use_count(self, value: Value) -> int:
        """Total reads of ``value``: consuming edges + the graph output."""
        return len(value.consumers) + (1 if value is self.output else 0)

    def values(self) -> Iterable[Value]:
        yield self.input
        for node in self.nodes:
            yield node.output

    def replace_input(self, node: Node, position: int,
                      new_value: Value) -> None:
        """Rewire one consuming edge of ``node`` to read ``new_value``."""
        old = node.inputs[position]
        old.consumers.remove(node)
        node.inputs[position] = new_value
        new_value.consumers.append(node)

    def redirect_uses(self, old: Value, new: Value) -> None:
        """Point every consumer of ``old`` (but not the output) at ``new``."""
        if old is self.output:
            raise GraphInvariantError(
                f"cannot redirect the graph output value {old.name!r}; the "
                f"output register name must survive rewrites")
        for consumer in list(old.consumers):
            for position, value in enumerate(consumer.inputs):
                if value is old:
                    self.replace_input(consumer, position, new)

    def erase_node(self, node: Node) -> None:
        """Remove a node whose output nothing reads (legality-checked)."""
        if self.use_count(node.output) != 0:
            raise GraphInvariantError(
                f"cannot erase node {node.name!r}: its output "
                f"{node.output.name!r} still has "
                f"{self.use_count(node.output)} use(s)")
        for value in node.inputs:
            value.consumers.remove(node)
        node.inputs = []
        self.nodes.remove(node)

    def take_over_output(self, node: Node, value: Value) -> None:
        """Make ``node`` the producer of ``value`` (its old output dies).

        Used by producer-absorbing fusions (``add -> quantize`` fusion makes
        the add write the quantize's register).  The node's previous output
        must be dead apart from the consumer being absorbed.
        """
        old = node.output
        if old is self.output:
            raise GraphInvariantError(
                f"cannot retarget node {node.name!r}: it produces the graph "
                f"output {old.name!r}")
        if old.consumers:
            raise GraphInvariantError(
                f"cannot retarget node {node.name!r}: {old.name!r} still has "
                f"consumers")
        node.output = value
        value.producer = node

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every def-use invariant; raise GraphInvariantError if not.

        * nodes are in topological order (inputs defined earlier),
        * value names are unique (SSA),
        * producer/consumer edge lists exactly mirror node inputs/outputs,
        * the graph output is the input or produced by some node.
        """
        defined = {id(self.input)}
        names = {self.input.name}
        # Reads per value, counting multiplicity (one per consuming edge).
        reads: Dict[int, Dict[int, int]] = {}
        for node in self.nodes:
            for value in node.inputs:
                if id(value) not in defined:
                    raise GraphInvariantError(
                        f"node {node.name!r} reads {value.name!r} before its "
                        f"definition (topological order violated)")
                per_value = reads.setdefault(id(value), {})
                per_value[id(node)] = per_value.get(id(node), 0) + 1
            if node.output.producer is not node:
                raise GraphInvariantError(
                    f"value {node.output.name!r} does not point back at its "
                    f"producing node {node.name!r}")
            if node.output.name in names:
                raise GraphInvariantError(
                    f"SSA violation: value name {node.output.name!r} defined "
                    f"twice")
            names.add(node.output.name)
            defined.add(id(node.output))
        if id(self.output) not in defined:
            raise GraphInvariantError(
                f"graph output {self.output.name!r} is not defined by any "
                f"node (nor the graph input)")
        live = set(map(id, self.nodes))
        for value in self.values():
            recorded: Dict[int, int] = {}
            for consumer in value.consumers:
                if id(consumer) not in live:
                    raise GraphInvariantError(
                        f"value {value.name!r} lists an erased node as a "
                        f"consumer")
                recorded[id(consumer)] = recorded.get(id(consumer), 0) + 1
            if recorded != reads.get(id(value), {}):
                raise GraphInvariantError(
                    f"edge inconsistency: consumer list of {value.name!r} "
                    f"does not match the node input edges reading it")

    # ------------------------------------------------------------------
    # Debug dump
    # ------------------------------------------------------------------
    def to_dot(self) -> str:
        """Graphviz dump: nodes labeled op/name, edges register + dtype."""
        def edge_label(value: Value) -> str:
            dtype = value.dtype or "?"
            label = f"{value.name} {dtype}"
            if value.scale is not None:
                label += f"@{value.scale:.4g}"
            if value.shape is not None:
                label += " " + "x".join(str(d) for d in value.shape)
            return label

        def quote(text: str) -> str:
            return text.replace("\\", "\\\\").replace('"', '\\"')

        ids = {id(self.input): "in"}
        lines = [f'digraph "{quote(self.name)}" {{',
                 "  rankdir=TB;",
                 '  node [shape=box, fontname="monospace"];',
                 f'  in [label="input\\n{quote(self.input.name)}", '
                 f"shape=ellipse];"]
        for index, node in enumerate(self.nodes):
            ids[id(node.output)] = f"n{index}"
            lines.append(f'  n{index} [label="{quote(node.op)}\\n'
                         f'{quote(node.name)}"];')
        for index, node in enumerate(self.nodes):
            for value in node.inputs:
                source = ids.get(id(value))
                if source is not None:
                    lines.append(f'  {source} -> n{index} '
                                 f'[label="{quote(edge_label(value))}"];')
        sink = ids.get(id(self.output))
        if sink is not None:
            lines.append('  out [label="output", shape=ellipse];')
            lines.append(f'  {sink} -> out '
                         f'[label="{quote(edge_label(self.output))}"];')
        lines.append("}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Rewrite rules
# ---------------------------------------------------------------------------
class RewriteRule:
    """A legality-checked local graph rewrite.

    Subclasses document their transformation and implement

    * :meth:`precondition` — the legality check, evaluated against the
      *live* def-use edges immediately before each application (a prior
      rewrite in the same sweep may have invalidated an earlier match);
    * :meth:`rewrite` — the mutation, applied only when the precondition
      holds; returns True when the graph changed.

    :meth:`run` sweeps the rule over the graph once and re-validates the
    def-use invariants whenever anything was rewritten, so an illegal
    rewrite surfaces as :class:`GraphInvariantError` at optimization time.
    """

    #: stable identifier used in ``pass_stats`` and metrics.
    name = "rewrite"

    def precondition(self, node: Node, graph: Graph) -> bool:
        raise NotImplementedError

    def rewrite(self, node: Node, graph: Graph) -> bool:
        raise NotImplementedError

    def matches(self, graph: Graph) -> List[Node]:
        """Candidate nodes, in application order (default: program order)."""
        return list(graph.nodes)

    def run(self, graph: Graph) -> int:
        """Apply the rule everywhere it is legal; return application count."""
        applied = 0
        live = set(map(id, graph.nodes))
        for node in self.matches(graph):
            if id(node) not in live:          # erased by an earlier rewrite
                continue
            if not self.precondition(node, graph):
                continue
            if self.rewrite(node, graph):
                applied += 1
                live = set(map(id, graph.nodes))
        if applied:
            graph.validate()
        return applied
