"""Backbone architectures: shapes, parameter accounting, layer specs."""

import numpy as np
import pytest

from repro.models import (
    MobileNetV2Backbone,
    ResNet12Backbone,
    ResNet20Backbone,
    STRIDE_PLANS,
    get_config,
)
from repro.nn.tensor import Tensor


class TestMobileNetV2:
    def test_stride_plans_registered(self):
        assert STRIDE_PLANS["x1"] == (1, 2, 2, 2, 1, 2, 1)
        assert STRIDE_PLANS["x2"] == (1, 2, 2, 2, 1, 1, 1)
        assert STRIDE_PLANS["x4"] == (1, 2, 2, 1, 1, 1, 1)

    def test_invalid_stride_plan_length(self):
        with pytest.raises(ValueError):
            MobileNetV2Backbone(stride_plan=(1, 2))

    def test_tiny_forward_shape(self):
        config = get_config("mobilenetv2_tiny")
        backbone = config.build(seed=0)
        x = Tensor(np.random.default_rng(0).standard_normal((2, 3, 16, 16)).astype(np.float32))
        out = backbone(x)
        assert out.shape == (2, config.feature_dim)

    def test_output_dim_property(self):
        backbone = get_config("mobilenetv2_tiny").build()
        assert backbone.output_dim == backbone.feature_dim

    def test_layer_specs_match_module_parameters(self):
        """The analytic layer graph must count exactly the module's parameters
        (excluding biases, which the spec folds into BN/requantization)."""
        config = get_config("mobilenetv2_tiny")
        backbone = config.build(seed=0)
        specs = backbone.layer_specs((16, 16))
        spec_params = sum(spec.params for spec in specs)
        assert spec_params == backbone.num_parameters()

    def test_layer_specs_spatial_consistency(self):
        backbone = MobileNetV2Backbone(stride_plan="x4")
        specs = backbone.layer_specs((32, 32))
        # With the x4 stride plan the final feature map stays at 8x8.
        conv_specs = [s for s in specs if s.op_type in ("conv", "dwconv")]
        assert conv_specs[-1].out_hw == (8, 8)

    def test_stride_plan_affects_macs_not_params(self):
        x1 = get_config("mobilenetv2").summary(include_fcr=False)
        x4 = get_config("mobilenetv2_x4").summary(include_fcr=False)
        assert x1.total_params == x4.total_params
        assert x4.total_macs > 4 * x1.total_macs

    def test_residual_connections_only_when_shapes_match(self):
        backbone = get_config("mobilenetv2_tiny").build()
        for block in backbone.blocks:
            if block.use_residual:
                assert block.stride == 1

    def test_gradients_flow_to_all_parameters(self):
        backbone = get_config("mobilenetv2_tiny").build(seed=0)
        x = Tensor(np.random.default_rng(1).standard_normal((4, 3, 16, 16)).astype(np.float32))
        out = backbone(x)
        (out ** 2).mean().backward()
        missing = [name for name, p in backbone.named_parameters() if p.grad is None]
        assert not missing


class TestResNet:
    def test_resnet12_forward_shape(self):
        config = get_config("resnet12_tiny")
        backbone = config.build(seed=0)
        x = Tensor(np.random.default_rng(0).standard_normal((2, 3, 16, 16)).astype(np.float32))
        assert backbone(x).shape == (2, config.feature_dim)

    def test_resnet12_default_widths(self):
        backbone = ResNet12Backbone()
        assert backbone.feature_dim == 640
        assert backbone.channels == (64, 160, 320, 640)

    def test_resnet12_layer_specs_match_params(self):
        config = get_config("resnet12_tiny")
        backbone = config.build(seed=0)
        spec_params = sum(spec.params for spec in backbone.layer_specs((16, 16)))
        assert spec_params == backbone.num_parameters()

    def test_resnet20_forward_shape(self):
        config = get_config("resnet20_tiny")
        backbone = config.build(seed=0)
        x = Tensor(np.random.default_rng(0).standard_normal((2, 3, 16, 16)).astype(np.float32))
        assert backbone(x).shape == (2, config.feature_dim)

    def test_resnet20_layer_specs_match_params(self):
        config = get_config("resnet20_tiny")
        backbone = config.build(seed=0)
        spec_params = sum(spec.params for spec in backbone.layer_specs((16, 16)))
        assert spec_params == backbone.num_parameters()

    def test_resnet20_downsampling(self):
        backbone = ResNet20Backbone(widths=(8, 16, 32), blocks_per_stage=2)
        specs = backbone.layer_specs((32, 32))
        final_conv = [s for s in specs if s.op_type == "conv"][-1]
        assert final_conv.out_hw == (8, 8)   # two stride-2 stages: 32 -> 16 -> 8

    def test_resnet12_gradients_flow(self):
        backbone = get_config("resnet12_tiny").build(seed=0)
        x = Tensor(np.random.default_rng(2).standard_normal((2, 3, 16, 16)).astype(np.float32))
        (backbone(x) ** 2).mean().backward()
        assert all(p.grad is not None for p in backbone.parameters())


class TestGraphSummary:
    def test_totals(self):
        config = get_config("mobilenetv2_tiny")
        summary = config.summary()
        assert summary.total_params > 0
        assert summary.total_macs > 0
        assert summary.total_weight_bytes(8) == pytest.approx(summary.total_params, abs=1)

    def test_by_type(self):
        summary = get_config("mobilenetv2_tiny").summary()
        assert len(summary.by_type("dwconv")) > 0
        assert len(summary.by_type("conv")) > 0
        assert len(summary.by_type("linear")) == 1  # the FCR

    def test_max_activation_bytes_positive(self):
        summary = get_config("mobilenetv2_tiny").summary()
        assert summary.max_activation_bytes(8) > 0
