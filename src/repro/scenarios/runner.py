"""Scenario harness: drive seeded workloads + chaos against a live Server.

Every scenario follows the same contract:

1. build a fresh learned model and a 2-worker :class:`Server` from the
   scenario seed (deterministic: same seed, same model bits);
2. drive a :mod:`generated workload <repro.scenarios.loadgen>` and/or a
   scripted fault sequence (:mod:`repro.scenarios.chaos`) against it;
3. assert **degraded-but-correct** behaviour: every answered request is
   *bit-identical* to the single-process reference predictor, every
   unanswered request fails with a *typed* error
   (:class:`~repro.serve.sharded.RemoteWorkerError` /
   :class:`~repro.serve.sharded.WorkerDiedError` /
   :class:`~repro.serve.server.ServerOverloaded`) — never a hang, never
   silently wrong bits — and the stats/trace surfaces stay coherent;
4. record the outcome into ``BENCH_scenarios.json`` (a
   ``{"latest", "history"}`` trend per scenario, see
   :func:`repro.report.bench.append_keyed_bench_record`).

A failed check raises :class:`ScenarioFailure` naming the scenario and the
check; ``python -m repro.scenarios --seed N`` reproduces any failure
exactly.

The scenario matrix (one entry per chaos mode the serving stack claims to
survive):

====================  ======================================================
scenario              what it proves
====================  ======================================================
``steady_poisson``    mixed sync/async + learn bursts + malformed and
                      oversized requests under Poisson load: full parity,
                      typed rejections, coherent trace export
``burst_admission``   concurrent bursty overload: the admission cap is
                      exact (never overshoots), shedding is typed, and the
                      SLO gate un-sticks once the latency EMA decays
``kill_shard``        SIGKILL with respawn disabled: survivors keep
                      answering bit-identically, in-flight work fails
                      typed, sync scatter re-dispatches the corpse's chunks
``hang_shard``        SIGSTOP (wedged-but-alive): one shared scatter
                      deadline (no per-chunk compounding), broadcasts
                      tolerate the mute shard, SIGCONT heals
``slow_shard``        one slow replica under diurnal load: slow is not
                      wrong — all answers exact, chaos visible in stats
``corrupt_frames``    corrupted result frames: bounded typed failures,
                      no collector crash, full parity after
``ring_exhaustion``   result ring permanently full: the pickle fallback
                      carries all traffic bit-identically
``kill_recover``      SIGKILL with the supervisor on: the full worker
                      count is restored within a bounded window, the
                      respawned shard answers bit-identically (prototype
                      resync proven by targeted submits), and the
                      recovery latency lands in the bench record
``crash_loop``        every respawned incarnation is killed again: the
                      crash-loop budget gives the shard up with typed
                      errors and coherent stats, survivors unaffected
``sigstop_escalation``  SIGSTOP under hang detection: the heartbeat-silent
                      shard is escalated, SIGKILLed, respawned, and
                      rejoins with full parity
``restart_replay``    learn_class churn (including one mid-crash) into a
                      write-ahead journal, full restart, journal replay:
                      the restored server is bit-identical
====================  ======================================================

Besides its checks, every matrix run is also a latency regression gate:
once a scenario's recorded trend carries :data:`LATENCY_FLOOR_MIN_HISTORY`
history entries with a positive batch-latency p50, the scenario's *latency
floor* arms — a new record whose p50 exceeds
:data:`LATENCY_FLOOR_MULTIPLIER` x the historical median fails the run
(see :func:`apply_latency_floor`).
"""

from __future__ import annotations

import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core import OFSCIL, OFSCILConfig
from ..obs.trace import JsonlSpanExporter, read_jsonl_spans
from ..report.bench import append_keyed_bench_record, load_keyed_bench
from ..serve import (
    BackoffSchedule,
    RemoteWorkerError,
    Server,
    ServerOverloaded,
    WorkerDiedError,
)
from .chaos import ChaosController, ChaosInjector
from .loadgen import Workload, generate_workload

BACKBONE = "mobilenetv2_x4_tiny"
BASE_CLASSES = 6
SHOTS_PER_CLASS = 5
IMAGE_SHAPE = (3, 16, 16)

#: Default artefact file (repository root), one ``{"latest","history"}``
#: trend per scenario name.
DEFAULT_BENCH_PATH = \
    Path(__file__).resolve().parents[3] / "BENCH_scenarios.json"

#: Where ``restart_replay`` writes its learn_class journal (repository
#: root, gitignored).  Left on disk after the run on purpose: CI uploads
#: it as an artifact so a failed replay can be re-examined offline.
DEFAULT_JOURNAL_PATH = \
    Path(__file__).resolve().parents[3] / "scenario_learn_journal.bin"

#: Generous single-request deadline: scenarios run on arbitrarily loaded
#: CI machines, so correctness checks never race the scheduler.
RESULT_TIMEOUT_S = 120.0

#: Bounded recovery window the supervised-respawn scenarios hold the
#: engine to: detection + backoff + interpreter spawn + replica restore +
#: prototype resync must all fit, even on a loaded CI machine.
RECOVERY_WINDOW_S = 60.0

#: History entries with a positive batch-latency p50 a scenario's trend
#: needs before its latency floor arms — fewer and the median is noise.
LATENCY_FLOOR_MIN_HISTORY = 3

#: Armed latency limit as a multiple of the historical median p50.  Loose
#: by design: the gate exists to catch order-of-magnitude serving
#: regressions (a lost fast path, an accidental sync wait), not scheduler
#: jitter on shared CI machines.
LATENCY_FLOOR_MULTIPLIER = 5.0

#: Fast, deterministic respawn backoff for the recovery scenarios: real
#: deployments want the default quarter-second-doubling schedule, a
#: scenario wants recovery (or crash-loop exhaustion) inside seconds.
def _fast_backoff(seed: int) -> BackoffSchedule:
    return BackoffSchedule(base_s=0.05, cap_s=0.1, jitter=0.0,
                           seed=seed)


class ScenarioFailure(AssertionError):
    """A scenario's degraded-but-correct contract was violated."""


# ---------------------------------------------------------------------------
# Shared fixtures
# ---------------------------------------------------------------------------
def build_model(seed: int):
    """A frozen model with BASE_CLASSES learned from deterministic shots
    (the same recipe the serving test suite uses)."""
    model = OFSCIL.from_registry(BACKBONE, OFSCILConfig(backbone=BACKBONE),
                                 seed=seed)
    model.freeze_feature_extractor()
    rng = np.random.default_rng(seed + 42)
    shots = rng.standard_normal(
        (BASE_CLASSES * SHOTS_PER_CLASS, *IMAGE_SHAPE)).astype(np.float32)
    for class_id in range(BASE_CLASSES):
        start = class_id * SHOTS_PER_CLASS
        model.learn_class(shots[start:start + SHOTS_PER_CLASS], class_id)
    return model, shots


def learn_shots_for(class_id: int) -> np.ndarray:
    """Deterministic novel-class shots keyed by the class id alone, so the
    driver and any replaying verifier materialise identical bits."""
    rng = np.random.default_rng(10_000 + class_id)
    return rng.standard_normal(
        (SHOTS_PER_CLASS, *IMAGE_SHAPE)).astype(np.float32)


class ScenarioRun:
    """One scenario's server, query pools, and check bookkeeping."""

    def __init__(self, name: str, seed: int, **server_kwargs):
        self.name = name
        self.seed = seed
        self.checks: List[str] = []
        self.model, self.shots = build_model(seed)
        rng = np.random.default_rng(seed + 17)
        self.queries = rng.standard_normal(
            (24, *IMAGE_SHAPE)).astype(np.float32)
        # A shape the compiled stack genuinely rejects: the backbone is
        # spatially shape-agnostic, but a wrong channel count cannot pass
        # the first conv — the typed-error path, not a silent answer.
        self.malformed_image = rng.standard_normal(
            (4, 16, 16)).astype(np.float32)
        # A legitimate batch big enough to overflow a scenario-shrunk ring
        # slot: it must still answer correctly through the pickle fallback.
        self.oversized_batch = rng.standard_normal(
            (32, *IMAGE_SHAPE)).astype(np.float32)
        kwargs = dict(num_workers=2, max_latency_s=0.02)
        kwargs.update(server_kwargs)
        self.server = Server(self.model, **kwargs)
        self.chaos = ChaosController(self.server)

    # ------------------------------------------------------------------
    def reference(self):
        """A fresh single-process predictor over the *current* model state
        — the ground truth every served answer must match bit-for-bit."""
        return self.model.runtime_predictor()

    def check(self, condition: bool, label: str) -> None:
        if not condition:
            raise ScenarioFailure(f"[{self.name}] FAILED: {label}")
        self.checks.append(label)

    def parity_sweep(self, label: str = "final parity sweep") -> None:
        """Bit-for-bit sweep: served predict + backbone features against
        the single-process reference."""
        reference = self.reference()
        self.check(
            np.array_equal(self.server.predict(self.queries),
                           reference.predict(self.queries)),
            f"{label}: predict bitwise")
        self.check(
            np.array_equal(
                self.server.extract_backbone_features(self.queries[:8]),
                reference.extract_backbone_features(self.queries[:8])),
            f"{label}: backbone features bitwise")

    def coherent_stats(self) -> dict:
        """Invariants the stats surface must satisfy in *any* state."""
        report = self.server.stats_dict()
        self.check(report["samples"] >= report["batches_dispatched"],
                   "stats: samples cover dispatched batches")
        self.check(0.0 <= report["shed_rate"] <= 1.0,
                   "stats: shed rate within [0, 1]")
        self.check(report["ema_batch_latency_s"] >= 0.0,
                   "stats: latency EMA non-negative")
        self.check(all(count >= 0
                       for count in report["inflight_per_worker"]),
                   "stats: in-flight counts non-negative")
        self.check(
            set(report["dead_workers"]).issubset(
                range(report["num_workers"])),
            "stats: dead-worker ids valid")
        self.check(len(report["workers"]) == report["num_workers"],
                   "stats: one record per worker")
        return report

    def counters(self) -> dict:
        report = self.server.stats.as_dict()
        return {
            "single_requests": report["single_requests"],
            "batch_requests": report["batch_requests"],
            "samples": report["samples"],
            "batches_dispatched": report["batches_dispatched"],
            "requests_shed": report["requests_shed"],
            "batch_latency_p50_ms": report["batch_latency_p50_ms"],
            "batch_latency_p99_ms": report["batch_latency_p99_ms"],
        }

    def close(self) -> None:
        self.chaos.heal(timeout=30.0)
        self.server.close()


# ---------------------------------------------------------------------------
# Workload driver
# ---------------------------------------------------------------------------
def drive_workload(run: ScenarioRun, workload: Workload,
                   time_scale: float = 1.0) -> dict:
    """Execute a workload schedule against the run's server.

    Async ops enqueue through :meth:`Server.submit`; sync ops (``predict``,
    ``oversized``, ``learn``) run on a small thread pool so they do not
    stall the arrival schedule — which also makes concurrent sync callers a
    standing part of every scenario.  Returns the raw per-op outcomes for
    the scenario to assert on.
    """
    server = run.server
    pool = run.shots
    async_ops: List[tuple] = []        # (op, future)
    sync_ops: List[tuple] = []         # (op, thread-future)
    sheds = 0
    started = time.monotonic()
    with ThreadPoolExecutor(max_workers=3,
                            thread_name_prefix="scenario-sync") as executor:
        for op in workload.ops:
            delay = op.at_s * time_scale - (time.monotonic() - started)
            if delay > 0:
                time.sleep(delay)
            try:
                if op.kind == "submit":
                    image = pool[op.index % len(pool)]
                    async_ops.append((op, server.submit(image)))
                elif op.kind == "malformed":
                    async_ops.append(
                        (op, server.submit(run.malformed_image)))
                elif op.kind == "predict":
                    image = pool[op.index % len(pool)][None]
                    sync_ops.append(
                        (op, executor.submit(server.predict, image)))
                elif op.kind == "oversized":
                    sync_ops.append(
                        (op, executor.submit(server.predict,
                                             run.oversized_batch)))
                elif op.kind == "learn":
                    sync_ops.append(
                        (op, executor.submit(server.learn_class,
                                             learn_shots_for(op.index),
                                             op.index)))
                else:  # pragma: no cover - loadgen only emits known kinds
                    raise ValueError(f"unknown op kind {op.kind!r}")
            except ServerOverloaded:
                sheds += 1
    outcomes = {"sheds": sheds, "async": [], "sync": []}
    for op, future in async_ops:
        try:
            outcomes["async"].append(
                (op, future.result(timeout=RESULT_TIMEOUT_S), None))
        except Exception as exc:  # noqa: BLE001 - classified by scenario
            outcomes["async"].append((op, None, exc))
    for op, future in sync_ops:
        try:
            outcomes["sync"].append(
                (op, future.result(timeout=RESULT_TIMEOUT_S), None))
        except Exception as exc:  # noqa: BLE001
            outcomes["sync"].append((op, None, exc))
    return outcomes


def _split_outcomes(outcomes: dict, kind: str) -> tuple:
    """(successes, failures) of one op kind from a driver outcome dict."""
    channel = "async" if kind in ("submit", "malformed") else "sync"
    entries = [entry for entry in outcomes[channel]
               if entry[0].kind == kind]
    successes = [entry for entry in entries if entry[2] is None]
    failures = [entry for entry in entries if entry[2] is not None]
    return successes, failures


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------
def scenario_steady_poisson(seed: int) -> dict:
    """Mixed traffic under Poisson load, tracing on: parity + typed
    rejections for malformed/oversized + coherent trace export."""
    trace_path = Path(tempfile.mkdtemp(prefix="repro-scn-")) / "trace.jsonl"
    # slot_bytes is shrunk so the oversized sync batches overflow a ring
    # slot and exercise the inline-pickle fallback under live load.
    run = ScenarioRun("steady_poisson", seed, trace_sample=1.0,
                      trace_exporter=JsonlSpanExporter(trace_path),
                      slot_bytes=65536)
    try:
        expected = run.reference().predict(run.shots)
        # Phase 1 — version-stable exact labels for a deterministic slice.
        futures = [run.server.submit(run.shots[i]) for i in range(12)]
        labels = [future.result(timeout=RESULT_TIMEOUT_S)
                  for future in futures]
        run.check(labels == [int(label) for label in expected[:12]],
                  "pre-churn async labels match reference bitwise")
        # Phase 2 — the generated mixed workload (learn bursts included).
        workload = generate_workload(
            "steady_poisson", seed, num_ops=48, arrival="poisson",
            rate_hz=120.0, sync_fraction=0.15, malformed_fraction=0.08,
            oversized_fraction=0.06, learn_bursts=2,
            first_learn_class=BASE_CLASSES, query_pool=len(run.shots))
        outcomes = drive_workload(run, workload)
        run.check(outcomes["sheds"] == 0,
                  "no shedding below the admission limits")
        submits, submit_failures = _split_outcomes(outcomes, "submit")
        run.check(not submit_failures,
                  "every well-formed async submit answered")
        valid_ids = set(range(BASE_CLASSES + 2))
        run.check(all(int(label) in valid_ids for _, label, _ in submits),
                  "async labels within the learned class-id set")
        malformed_ok, malformed_failed = _split_outcomes(outcomes,
                                                         "malformed")
        run.check(not malformed_ok and all(
            isinstance(exc, RemoteWorkerError)
            for _, _, exc in malformed_failed),
            "malformed submits fail with typed RemoteWorkerError")
        oversized_ok, oversized_failed = _split_outcomes(outcomes,
                                                         "oversized")
        run.check(not oversized_failed and all(
            int(label) in valid_ids
            for _, labels, _ in oversized_ok for label in labels),
            "oversized batches answer via the ring-overflow fallback")
        learns, learn_failures = _split_outcomes(outcomes, "learn")
        run.check(len(learns) == 2 and not learn_failures,
                  "both learn bursts applied")
        run.parity_sweep("post-churn")
        report = run.coherent_stats()
        run.check(report["prototype_broadcasts"] >= 1,
                  "learn bursts broadcast prototypes")
        run.check(report["dead_workers"] == [],
                  "malformed traffic kills requests, not workers")
        counters = run.counters()
        workload_summary = workload.summary()
    finally:
        run.close()
    # The trace file is complete only because close() flushed the exporter.
    spans = read_jsonl_spans(trace_path)
    roots = [span for span in spans if span.get("parent_id") is None]
    span_ids = {span["span_id"] for span in spans}
    orphans = [span for span in spans
               if span.get("parent_id") is not None
               and span["parent_id"] not in span_ids]
    run.check(len(roots) >= 12, "traced roots exported for async submits")
    run.check(not orphans, "every exported span parents into the trace")
    return {"workload": workload_summary, "counters": counters,
            "checks": run.checks}


def scenario_burst_admission(seed: int) -> dict:
    """Concurrent bursty overload: exact admission cap, typed shedding,
    and EMA decay un-sticking the SLO gate."""
    run = ScenarioRun("burst_admission", seed, max_pending=8,
                      max_latency_s=0.005, ema_halflife_s=0.3)
    try:
        expected = run.reference().predict(run.shots)
        accepted: List[tuple] = []
        sheds: List[Exception] = []
        peak = {"outstanding": 0}
        stop_sampling = threading.Event()

        def sample_outstanding() -> None:
            while not stop_sampling.is_set():
                peak["outstanding"] = max(peak["outstanding"],
                                          run.server.outstanding)
                time.sleep(0.0005)

        def flood(thread_id: int) -> None:
            for i in range(25):
                index = (thread_id * 25 + i) % len(run.shots)
                try:
                    future = run.server.submit(run.shots[index])
                except ServerOverloaded as exc:
                    sheds.append(exc)
                else:
                    accepted.append((index, future))

        sampler = threading.Thread(target=sample_outstanding, daemon=True)
        sampler.start()
        threads = [threading.Thread(target=flood, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop_sampling.set()
        sampler.join(timeout=5.0)
        run.check(peak["outstanding"] <= 8,
                  "outstanding requests never exceed the admission cap")
        run.check(len(sheds) > 0, "the burst was shed, not queued")
        run.check(all(isinstance(exc, ServerOverloaded) for exc in sheds),
                  "every rejection is a typed ServerOverloaded")
        for index, future in accepted:
            label = future.result(timeout=RESULT_TIMEOUT_S)
            run.check(int(label) == int(expected[index]),
                      f"accepted request {index} answered bitwise")
        # Sticky-shed regression: a stale run of 1s latency readings must
        # decay instead of shedding the now-idle server forever.
        run.server.latency_slo_s = 0.25
        for _ in range(10):
            run.server.stats.observe_batch_latency(1.0)
        try:
            run.server.submit(run.shots[0])
            raise ScenarioFailure("[burst_admission] FAILED: stale latency "
                                  "EMA did not trip the SLO gate")
        except ServerOverloaded:
            run.checks.append("stale latency EMA trips the SLO gate")
        time.sleep(1.2)                   # > grace + 2 half-lives at 0.3s
        label = run.server.submit(
            run.shots[0]).result(timeout=RESULT_TIMEOUT_S)
        run.check(int(label) == int(expected[0]),
                  "SLO gate re-admits once the stale EMA decays")
        run.server.latency_slo_s = None
        report = run.coherent_stats()
        run.check(report["requests_shed"] == len(sheds) + 1,
                  "shed accounting matches the observed rejections")
        counters = run.counters()
    finally:
        run.close()
    return {"workload": {"name": "burst_admission", "num_ops": 100,
                         "arrival": "concurrent-flood"},
            "counters": counters, "checks": run.checks}


def scenario_kill_shard(seed: int) -> dict:
    """SIGKILL one shard mid-stream: survivors answer bit-identically,
    the corpse's in-flight work fails typed, scatter re-dispatches.

    Respawn is explicitly disabled (``max_respawns=0``): this scenario
    pins the *degraded* contract — a dead shard stays dead and the pool
    keeps serving around it.  ``kill_recover`` covers the supervised
    respawn path."""
    run = ScenarioRun("kill_shard", seed, max_respawns=0)
    try:
        expected = run.reference().predict(run.shots)
        run.server.predict(run.queries[:8])          # warm both replicas
        futures: List[tuple] = []
        for i in range(30):
            if i == 8:
                run.chaos.kill_worker(1)
            index = i % len(run.shots)
            futures.append((index, run.server.submit(run.shots[index])))
            time.sleep(0.005)
        successes = 0
        for index, future in futures:
            try:
                label = future.result(timeout=RESULT_TIMEOUT_S)
            except RemoteWorkerError:
                continue          # typed: the corpse took it down
            successes += 1
            run.check(int(label) == int(expected[index]),
                      f"post-kill async answer {index} bitwise")
        run.check(successes >= 10,
                  "the surviving shard kept answering the stream")
        started = time.monotonic()
        run.parity_sweep("degraded pool")
        run.check(time.monotonic() - started < 60.0,
                  "degraded sync predict completes promptly")
        report = run.coherent_stats()
        run.check(report["dead_workers"] == [1],
                  "stats name exactly the killed shard")
        run.check(report["live_workers"] == [0],
                  "stats keep the survivor live")
        counters = run.counters()
    finally:
        run.close()
    return {"workload": {"name": "kill_shard", "num_ops": 30,
                         "arrival": "paced-stream"},
            "counters": counters, "checks": run.checks}


def scenario_hang_shard(seed: int) -> dict:
    """SIGSTOP one shard: shared scatter deadline (no compounding),
    partial broadcast, async rerouting, SIGCONT heals completely."""
    run = ScenarioRun("hang_shard", seed, micro_batch=8)
    try:
        run.server.predict(run.queries)              # warm both replicas
        run.chaos.hang_worker(0)
        deadline_s = 4.0
        started = time.monotonic()
        try:
            run.server.engine.scatter("backbone", run.queries,
                                      timeout=deadline_s)
            raise ScenarioFailure("[hang_shard] FAILED: scatter over a "
                                  "hung shard did not time out")
        except TimeoutError:
            elapsed = time.monotonic() - started
            run.check(elapsed < 2.0 * deadline_s,
                      "scatter respects one shared deadline "
                      f"({elapsed:.1f}s for {deadline_s:.1f}s budget)")
        # Broadcast tolerates the mute shard and reports who answered.
        answered = run.server.engine.broadcast("ping", timeout=2.0)
        run.check(sorted(answered) == [1],
                  "broadcast returns the answering shard and omits the "
                  "hung one")
        # Async traffic reroutes around the hung shard (its in-flight
        # count stays elevated, so least-loaded routing avoids it).
        expected = run.reference().predict(run.shots)
        futures = [(i, run.server.submit(run.shots[i])) for i in range(8)]
        for index, future in futures:
            label = future.result(timeout=RESULT_TIMEOUT_S)
            run.check(int(label) == int(expected[index]),
                      f"rerouted async answer {index} bitwise")
        run.chaos.resume_worker(0)
        time.sleep(0.2)                  # let the woken shard drain
        run.parity_sweep("post-heal")
        report = run.coherent_stats()
        run.check(report["dead_workers"] == [],
                  "a hung-then-resumed shard is never declared dead")
        counters = run.counters()
    finally:
        run.close()
    return {"workload": {"name": "hang_shard", "num_ops": 8,
                         "arrival": "scripted"},
            "counters": counters, "checks": run.checks}


def scenario_slow_shard(seed: int) -> dict:
    """One slow replica under diurnal load: slow is not wrong."""
    run = ScenarioRun("slow_shard", seed)
    try:
        run.server.predict(run.queries[:8])          # warm both replicas
        acked = run.chaos.slow_shard(1, slow_s=0.03)
        run.check(acked.get("slow_s") == 0.03, "slow shard acked the fault")
        workload = generate_workload(
            "slow_shard", seed, num_ops=30, arrival="diurnal",
            rate_hz=120.0, sync_fraction=0.2, learn_bursts=1,
            first_learn_class=BASE_CLASSES, query_pool=len(run.shots))
        outcomes = drive_workload(run, workload)
        submits, submit_failures = _split_outcomes(outcomes, "submit")
        run.check(not submit_failures and outcomes["sheds"] == 0,
                  "every request answered despite the slow shard")
        valid_ids = set(range(BASE_CLASSES + 1))
        run.check(all(int(label) in valid_ids for _, label, _ in submits),
                  "slow-shard labels within the learned class-id set")
        records = run.server.worker_stats()
        run.check(records[1].get("chaos", {}).get("slow_s") == 0.03,
                  "worker stats expose the active chaos settings")
        run.parity_sweep("slow shard active")
        run.chaos.heal()
        records = run.server.worker_stats()
        run.check(not records[1].get("chaos", {}).get("slow_s"),
                  "heal clears the slow-shard fault")
        run.coherent_stats()
        counters = run.counters()
        workload_summary = workload.summary()
    finally:
        run.close()
    return {"workload": workload_summary, "counters": counters,
            "checks": run.checks}


def scenario_corrupt_frames(seed: int) -> dict:
    """Corrupted result frames fail their requests typed — bounded blast
    radius, no collector crash, full parity afterwards."""
    injector = ChaosInjector(max_corruptions=2)
    run = ScenarioRun("corrupt_frames", seed, chaos=injector)
    try:
        expected = run.reference().predict(run.shots)
        run.server.predict(run.queries[:8])          # warm, uncorrupted
        injector.arm()
        failures: List[Exception] = []
        for i in range(10):
            try:
                label = run.server.submit(
                    run.shots[i]).result(timeout=RESULT_TIMEOUT_S)
            except RemoteWorkerError as exc:
                failures.append(exc)
            else:
                run.check(int(label) == int(expected[i]),
                          f"uncorrupted answer {i} bitwise")
        injector.disarm()
        run.check(len(failures) == injector.corrupted == 2,
                  "exactly the corrupted frames failed their requests")
        run.check(all("undecodable result" in str(exc)
                      for exc in failures),
                  "corrupted frames degrade to typed undecodable errors")
        run.parity_sweep("post-corruption")
        report = run.coherent_stats()
        run.check(report["dead_workers"] == [],
                  "frame corruption kills requests, not workers")
        counters = run.counters()
    finally:
        run.close()
    return {"workload": {"name": "corrupt_frames", "num_ops": 10,
                         "arrival": "sequential"},
            "counters": counters, "checks": run.checks}


def scenario_ring_exhaustion(seed: int) -> dict:
    """Result rings permanently full: every reply takes the pickle
    fallback and stays bit-identical."""
    run = ScenarioRun("ring_exhaustion", seed)
    try:
        run.server.predict(run.queries[:8])          # warm both replicas
        for worker in run.server.engine.live_workers:
            acked = run.chaos.exhaust_result_ring(worker, on=True)
            run.check(acked.get("exhaust_result_ring") is True,
                      f"worker {worker} acked ring exhaustion")
        workload = generate_workload(
            "ring_exhaustion", seed, num_ops=30, arrival="bursty",
            rate_hz=200.0, sync_fraction=0.3, query_pool=len(run.shots))
        outcomes = drive_workload(run, workload)
        expected = run.reference().predict(run.shots)
        submits, submit_failures = _split_outcomes(outcomes, "submit")
        run.check(not submit_failures and outcomes["sheds"] == 0,
                  "every request answered through the pickle fallback")
        run.check(all(int(label) == int(expected[op.index % len(run.shots)])
                      for op, label, _ in submits),
                  "fallback-path async labels match reference bitwise")
        run.parity_sweep("ring exhausted")
        records = run.server.worker_stats()
        run.check(all(record.get("chaos", {}).get("exhaust_result_ring")
                      for record in records),
                  "worker stats expose the ring-exhaustion fault")
        run.chaos.heal()
        run.parity_sweep("post-heal")
        run.coherent_stats()
        counters = run.counters()
        workload_summary = workload.summary()
    finally:
        run.close()
    return {"workload": workload_summary, "counters": counters,
            "checks": run.checks}


def _await_recovery(run: ScenarioRun, worker: int, old_pid: int,
                    deadline_s: float = RECOVERY_WINDOW_S) -> float:
    """Block until ``worker`` is live again under a *new* pid; returns the
    observed wall-clock recovery time.  Raises :class:`ScenarioFailure` if
    the bounded window elapses first — an unbounded wait would turn a
    respawn bug into a hung CI job."""
    engine = run.server.engine
    started = time.monotonic()
    while time.monotonic() - started < deadline_s:
        if (worker in engine.live_workers
                and engine.worker_pids[worker] != old_pid):
            return time.monotonic() - started
        time.sleep(0.02)
    raise ScenarioFailure(
        f"[{run.name}] FAILED: worker {worker} not respawned within "
        f"{deadline_s:.0f}s (live={engine.live_workers}, "
        f"gave_up={engine.gave_up_workers})")


def scenario_kill_recover(seed: int) -> dict:
    """SIGKILL with the supervisor on: the pool self-heals.

    The full worker count must come back within :data:`RECOVERY_WINDOW_S`,
    the respawned shard must hold the *current* prototype state (proven by
    a targeted submit, which least-loaded routing could otherwise dodge),
    post-recovery answers must be bit-identical, and the measured recovery
    latency must land in the stats surface and the bench record."""
    run = ScenarioRun("kill_recover", seed, watchdog_interval_s=0.05,
                      respawn_backoff=_fast_backoff(seed))
    try:
        expected = run.reference().predict(run.shots)
        run.server.predict(run.queries[:8])          # warm both replicas
        old_pid = run.server.engine.worker_pids[1]
        run.chaos.kill_worker(1)
        recovered_s = _await_recovery(run, 1, old_pid)
        run.check(recovered_s < RECOVERY_WINDOW_S,
                  "full worker count restored within the bounded window "
                  f"({recovered_s:.2f}s)")
        run.check(run.server.engine.worker_pids[1] != old_pid,
                  "the respawned shard is a fresh process")
        run.check(sorted(run.server.engine.live_workers) == [0, 1],
                  "routing rejoined the respawned shard")
        run.check(run.server.engine.restart_counts == [0, 1],
                  "exactly the killed shard restarted, exactly once")
        # Targeted submit at the respawned shard: least-loaded routing
        # could answer everything from the survivor, so parity alone would
        # not prove the replacement resynced its prototype replica.
        labels = run.server.engine.submit(
            "predict", (run.shots[:6], None),
            worker=1).result(timeout=RESULT_TIMEOUT_S)
        run.check(np.array_equal(labels, expected[:6]),
                  "targeted answers from the respawned shard bitwise "
                  "(prototype state resynced)")
        run.parity_sweep("post-recovery")
        report = run.coherent_stats()
        run.check(report["dead_workers"] == [],
                  "no shard left dead after recovery")
        run.check(report["worker_restarts"] == 1,
                  "stats count exactly one supervised restart")
        latency = report["last_recovery_latency_s"]
        run.check(latency is not None and 0.0 < latency < RECOVERY_WINDOW_S,
                  "recovery latency measured and within the window")
        counters = run.counters()
        counters["recovery_latency_s"] = round(float(latency), 3)
        counters["worker_restarts"] = report["worker_restarts"]
    finally:
        run.close()
    return {"workload": {"name": "kill_recover", "num_ops": 8,
                         "arrival": "scripted"},
            "counters": counters, "checks": run.checks}


def scenario_crash_loop(seed: int) -> dict:
    """Kill every respawned incarnation: the crash-loop budget holds.

    After ``max_respawns`` respawns inside the reset window the shard must
    degrade permanently — typed :class:`WorkerDiedError` on targeted work,
    no further spawn attempts, survivors bit-identical, stats coherent."""
    max_respawns = 2
    run = ScenarioRun("crash_loop", seed, watchdog_interval_s=0.05,
                      max_respawns=max_respawns,
                      respawn_backoff=_fast_backoff(seed))
    try:
        run.server.predict(run.queries[:8])          # warm both replicas
        engine = run.server.engine
        kills = 0
        seen_pids = {engine.worker_pids[0]}
        deadline = time.monotonic() + RECOVERY_WINDOW_S
        # Kill worker 0's every incarnation the moment it rejoins; the
        # supervisor burns its budget and must then stop trying.
        while 0 not in engine.gave_up_workers:
            if time.monotonic() > deadline:
                raise ScenarioFailure(
                    "[crash_loop] FAILED: budget never exhausted "
                    f"(kills={kills}, restarts={engine.restart_counts})")
            if 0 in engine.live_workers:
                seen_pids.add(engine.worker_pids[0])
                try:
                    run.chaos.kill_worker(0)
                    kills += 1
                except ProcessLookupError:
                    pass                 # lost the race; it is already dead
            time.sleep(0.02)
        run.check(engine.gave_up_workers == [0],
                  "the crash-looping shard — and only it — was given up")
        run.check(engine.restart_counts[0] <= max_respawns,
                  "respawns never exceeded the crash-loop budget")
        run.check(len(seen_pids) == engine.restart_counts[0] + 1,
                  "every incarnation was a distinct process")
        # The budget is terminal: the corpse must stay down.
        settle_restarts = engine.restart_counts[0]
        time.sleep(0.5)
        run.check(engine.restart_counts[0] == settle_restarts
                  and 0 not in engine.live_workers,
                  "no further respawn attempts after giving up")
        try:
            engine.submit("ping", None, worker=0).result(timeout=5.0)
            raise ScenarioFailure("[crash_loop] FAILED: targeted work at "
                                  "the given-up shard did not fail")
        except WorkerDiedError:
            run.checks.append("targeted work at the given-up shard fails "
                              "with typed WorkerDiedError")
        run.parity_sweep("survivor after crash loop")
        report = run.coherent_stats()
        run.check(report["dead_workers"] == [0],
                  "stats keep naming the given-up shard dead")
        run.check(report["live_workers"] == [1],
                  "the survivor stays live through the crash loop")
        run.check(report["gave_up_workers"] == [0],
                  "stats expose the exhausted crash-loop budget")
        run.check(report["respawns_abandoned"] == 1,
                  "stats count exactly one abandoned respawn")
        run.check(report["worker_failures"] >= max_respawns + 1,
                  "every kill surfaced as a worker failure")
        counters = run.counters()
        counters["kills"] = kills
        counters["worker_restarts"] = report["worker_restarts"]
    finally:
        run.close()
    return {"workload": {"name": "crash_loop", "num_ops": 8,
                         "arrival": "scripted"},
            "counters": counters, "checks": run.checks}


def scenario_sigstop_escalation(seed: int) -> dict:
    """SIGSTOP under hang detection: silence is failure.

    A SIGSTOPped shard passes ``is_alive()`` forever; only its heartbeat
    goes quiet.  With ``hang_silence_s`` armed the watchdog must escalate
    the mute shard to the failure path — SIGKILL, respawn, resync — and
    the pool must return to full strength with full parity."""
    run = ScenarioRun("sigstop_escalation", seed, watchdog_interval_s=0.05,
                      hang_silence_s=1.0,
                      respawn_backoff=_fast_backoff(seed))
    try:
        expected = run.reference().predict(run.shots)
        run.server.predict(run.queries[:8])          # warm both replicas
        old_pid = run.server.engine.worker_pids[0]
        run.chaos.hang_worker(0)
        recovered_s = _await_recovery(run, 0, old_pid)
        run.check(recovered_s < RECOVERY_WINDOW_S,
                  "hung shard escalated and respawned within the window "
                  f"({recovered_s:.2f}s)")
        run.check(recovered_s > 0.5,
                  "escalation waited out the silence threshold "
                  "(no hair-trigger on a merely busy shard)")
        run.check(run.server.engine.worker_pids[0] != old_pid,
                  "the SIGSTOPped process was replaced, not resumed")
        run.check(sorted(run.server.engine.live_workers) == [0, 1],
                  "routing rejoined the escalated shard")
        labels = run.server.engine.submit(
            "predict", (run.shots[:6], None),
            worker=0).result(timeout=RESULT_TIMEOUT_S)
        run.check(np.array_equal(labels, expected[:6]),
                  "targeted answers from the escalated shard bitwise")
        run.parity_sweep("post-escalation")
        report = run.coherent_stats()
        run.check(report["hang_escalations"] == 1,
                  "stats count exactly one hang escalation")
        run.check(report["worker_restarts"] == 1,
                  "the escalation fed the one supervised restart")
        run.check(report["dead_workers"] == [],
                  "no shard left dead after escalation")
        counters = run.counters()
        counters["recovery_latency_s"] = report["last_recovery_latency_s"]
        counters["hang_escalations"] = report["hang_escalations"]
    finally:
        run.close()
    return {"workload": {"name": "sigstop_escalation", "num_ops": 8,
                         "arrival": "scripted"},
            "counters": counters, "checks": run.checks}


def scenario_restart_replay(seed: int) -> dict:
    """learn_class churn + crash + full restart: the journal restores bits.

    Learned classes are journalled write-ahead (fsync-always), one shard is
    SIGKILLed mid-churn so at least one append races a recovery, the server
    is torn down completely, and a *fresh* server over a fresh base model
    replays the journal — prototype matrix, class ids, memory version, and
    served predictions must all come back bit-identical.  The journal file
    stays on disk (gitignored; CI uploads it as an artifact)."""
    journal_path = DEFAULT_JOURNAL_PATH
    journal_path.unlink(missing_ok=True)
    learned = [BASE_CLASSES + i for i in range(4)]
    run = ScenarioRun("restart_replay", seed, journal_path=journal_path,
                      journal_fsync="always", watchdog_interval_s=0.05,
                      respawn_backoff=_fast_backoff(seed))
    try:
        run.server.predict(run.queries[:8])          # warm both replicas
        for class_id in learned[:3]:
            run.server.learn_class(learn_shots_for(class_id), class_id)
        expected = run.reference().predict(run.shots)
        run.check(np.array_equal(run.server.predict(run.shots), expected),
                  "pre-crash parity over the journalled classes")
        old_pid = run.server.engine.worker_pids[1]
        run.chaos.kill_worker(1)
        # Learn while the supervisor is mid-recovery: the append and the
        # respawned shard's resync must not step on each other.
        run.server.learn_class(learn_shots_for(learned[3]), learned[3])
        _await_recovery(run, 1, old_pid)
        run.parity_sweep("post-crash, pre-restart")
        memory = run.model.memory
        saved_matrix, saved_ids = memory.prototype_matrix()
        saved_matrix = saved_matrix.copy()
        saved_version = memory.version
        saved_predictions = run.server.predict(run.queries)
        counters = run.counters()
    finally:
        run.close()
    run.check(journal_path.exists() and journal_path.stat().st_size > 0,
              "the journal survived server shutdown")
    # Full restart: fresh base model (same seed, none of the journalled
    # classes), fresh server, replay.
    model, _ = build_model(seed)
    restored = Server(model, num_workers=2, max_latency_s=0.02)
    try:
        applied = restored.restore(journal_path)
        run.check(applied == len(learned),
                  "replay applied exactly the journalled learn events")
        matrix, ids = model.memory.prototype_matrix()
        run.check(list(ids) == list(saved_ids),
                  "restored class-id set identical")
        run.check(np.array_equal(matrix, saved_matrix),
                  "restored prototype matrix bit-identical")
        run.check(model.memory.version == saved_version,
                  "restored memory version identical")
        run.check(
            np.array_equal(restored.predict(run.queries), saved_predictions),
            "served predictions after restore bit-identical to pre-restart")
        run.check(applied == restored.restore(journal_path) + applied,
                  "replay is idempotent (a second restore applies nothing)")
    finally:
        restored.close()
    counters["journal_bytes"] = journal_path.stat().st_size
    counters["records_applied"] = applied
    return {"workload": {"name": "restart_replay",
                         "num_ops": len(learned), "arrival": "scripted"},
            "counters": counters, "checks": run.checks}


#: name -> scenario callable (runs the scenario, returns its record body).
SCENARIOS: Dict[str, Callable[[int], dict]] = {
    "steady_poisson": scenario_steady_poisson,
    "burst_admission": scenario_burst_admission,
    "kill_shard": scenario_kill_shard,
    "hang_shard": scenario_hang_shard,
    "slow_shard": scenario_slow_shard,
    "corrupt_frames": scenario_corrupt_frames,
    "ring_exhaustion": scenario_ring_exhaustion,
    "kill_recover": scenario_kill_recover,
    "crash_loop": scenario_crash_loop,
    "sigstop_escalation": scenario_sigstop_escalation,
    "restart_replay": scenario_restart_replay,
}


# ---------------------------------------------------------------------------
# Latency floors
# ---------------------------------------------------------------------------
def latency_floor_ms(history,
                     min_history: int = LATENCY_FLOOR_MIN_HISTORY,
                     multiplier: float = LATENCY_FLOOR_MULTIPLIER):
    """The armed latency limit (ms) for one scenario's recorded trend.

    Returns ``None`` — the floor is *unarmed* — until at least
    ``min_history`` history entries carry a positive
    ``counters.batch_latency_p50_ms`` (scenarios that do not measure
    batch latency, malformed entries, and zero-sample histograms all
    leave the trend unarmed rather than producing a garbage limit).
    Armed, the limit is ``multiplier`` times the median of those
    readings: the median is robust to the occasional slow-CI outlier a
    mean would let poison the baseline.
    """
    samples = []
    for entry in history:
        if not isinstance(entry, dict):
            continue
        counters = entry.get("counters")
        if not isinstance(counters, dict):
            continue
        p50 = counters.get("batch_latency_p50_ms")
        if isinstance(p50, (int, float)) and not isinstance(p50, bool) \
                and p50 > 0:
            samples.append(float(p50))
    if len(samples) < min_history:
        return None
    return multiplier * float(np.median(samples))


def apply_latency_floor(name: str, record: dict, history) -> None:
    """Gate one fresh scenario record against its armed latency floor.

    Annotates ``record["latency_floor"]`` with the gate's verdict (so the
    bench trend shows when the floor armed and what it held the run to)
    and raises :class:`ScenarioFailure` when the new record's p50 exceeds
    the limit.  A record without a measurable p50 passes — absence of a
    measurement is not a regression.
    """
    limit = latency_floor_ms(history)
    if limit is None:
        record["latency_floor"] = {"armed": False}
        return
    p50 = record.get("counters", {}).get("batch_latency_p50_ms")
    measured = (isinstance(p50, (int, float))
                and not isinstance(p50, bool) and p50 > 0)
    verdict = {"armed": True, "limit_ms": round(limit, 3),
               "p50_ms": round(float(p50), 3) if measured else None}
    record["latency_floor"] = verdict
    if measured and p50 > limit:
        raise ScenarioFailure(
            f"[{name}] FAILED: latency floor violated — batch p50 "
            f"{p50:.3f}ms exceeds {limit:.3f}ms "
            f"({LATENCY_FLOOR_MULTIPLIER:.0f}x the median of the last "
            f"{len(history)} recorded runs)")


# ---------------------------------------------------------------------------
# Entrypoints
# ---------------------------------------------------------------------------
def run_scenario(name: str, seed: int = 0) -> dict:
    """Run one scenario; raises :class:`ScenarioFailure` on any violated
    check, returns its bench record on success."""
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"choose from {sorted(SCENARIOS)}")
    started = time.monotonic()
    body = SCENARIOS[name](seed)
    return {"scenario": name, "seed": seed, "ok": True,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "elapsed_s": round(time.monotonic() - started, 3),
            "num_checks": len(body.get("checks", [])), **body}


def run_matrix(seed: int = 0, names: Optional[List[str]] = None,
               bench_path=DEFAULT_BENCH_PATH,
               write_bench: bool = True,
               progress: Optional[Callable[[str], None]] = None
               ) -> List[dict]:
    """Run the scenario matrix; record each scenario's result trend.

    Fails fast: the first :class:`ScenarioFailure` propagates (the run is
    a correctness gate, not a survey).  On success every scenario has
    appended one record to its ``{"latest","history"}`` trend in
    ``bench_path``.

    When writing bench records, each scenario's fresh record is also held
    to its armed latency floor (:func:`apply_latency_floor`) against the
    trend recorded *before* this run — a passing-but-5x-slower scenario is
    a failure, not a data point.
    """
    records = []
    trends = load_keyed_bench(bench_path) if write_bench else {}
    for name in names if names is not None else list(SCENARIOS):
        if progress is not None:
            progress(f"scenario {name} (seed {seed}) ...")
        record = run_scenario(name, seed)
        if write_bench:
            apply_latency_floor(
                name, record, trends.get(name, {}).get("history", []))
            append_keyed_bench_record(bench_path, name, record)
        if progress is not None:
            progress(f"  ok: {record['num_checks']} checks, "
                     f"{record['elapsed_s']:.1f}s")
        records.append(record)
    return records
