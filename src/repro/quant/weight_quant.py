"""Weight quantization of Conv2d / Linear layers.

Weights are quantized per tensor (optionally per output channel) to signed
8-bit integers with TQT-style power-of-two thresholds; the float parameters
are replaced in place by their quantize-dequantize reconstruction, which is
exactly what the deployed int8 network computes (up to the integer
requantization arithmetic modelled in :mod:`repro.hw`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..nn.modules import Conv2d, Linear, Module
from .fake_quant import quantize_dequantize
from .tqt import select_threshold


@dataclass
class WeightQuantizationReport:
    """Scales and reconstruction errors of every quantized parameter."""

    bits: int = 8
    per_channel: bool = False
    thresholds: Dict[str, float] = field(default_factory=dict)
    mse: Dict[str, float] = field(default_factory=dict)

    @property
    def num_layers(self) -> int:
        return len(self.thresholds)

    @property
    def mean_mse(self) -> float:
        if not self.mse:
            return 0.0
        return float(np.mean(list(self.mse.values())))


def quantizable_layers(model: Module):
    """Yield (name, module) pairs of weight-carrying layers."""
    for name, module in model.named_modules():
        if isinstance(module, (Conv2d, Linear)):
            yield name or module.__class__.__name__, module


def quantize_weights(model: Module, bits: int = 8, per_channel: bool = False,
                     power_of_two: bool = True) -> WeightQuantizationReport:
    """Quantize all Conv2d/Linear weights of ``model`` in place.

    Biases are kept in higher precision (the MCU accumulates them in 32-bit
    registers), matching the deployment flow.
    """
    report = WeightQuantizationReport(bits=bits, per_channel=per_channel)
    for name, module in quantizable_layers(model):
        weight = module.weight.data
        if per_channel:
            reconstructed = np.empty_like(weight)
            thresholds = []
            for channel in range(weight.shape[0]):
                threshold = select_threshold(weight[channel], bits=bits,
                                             power_of_two=power_of_two)
                reconstructed[channel] = quantize_dequantize(weight[channel],
                                                             threshold, bits)
                thresholds.append(threshold)
            threshold_value = float(np.median(thresholds))
        else:
            threshold_value = select_threshold(weight, bits=bits,
                                               power_of_two=power_of_two)
            reconstructed = quantize_dequantize(weight, threshold_value, bits)
        report.thresholds[f"{name}.weight"] = threshold_value
        report.mse[f"{name}.weight"] = float(np.mean((weight - reconstructed) ** 2))
        module.weight.data = reconstructed.astype(weight.dtype)
    return report


def integer_weight_size_bytes(model: Module, bits: int = 8) -> int:
    """Total storage of the quantized weights (what ships to the MCU)."""
    total_bits = 0
    for _name, module in quantizable_layers(model):
        total_bits += module.weight.data.size * bits
        if getattr(module, "bias", None) is not None:
            total_bits += module.bias.data.size * 32
    return (total_bits + 7) // 8
