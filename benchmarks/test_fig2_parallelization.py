"""Fig. 2 — MACs/cycle versus number of active cluster cores.

Regenerates the three panels of Fig. 2: backbone inference (left), FCR
inference (centre) and FCR backpropagation update (right) for 1/2/4/8 cores.
"""

import pytest

from repro.hw import FIG2_CORE_COUNTS, GAP9Profiler
from repro.report import format_table

# Full-scale benchmark reproduction: minutes of training; excluded from
# the default (fast) suite by the `slow` marker — run with `pytest -m slow`.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def profiler():
    return GAP9Profiler()


def test_fig2_macs_per_cycle_curves(benchmark, profiler):
    curves = benchmark.pedantic(lambda: profiler.fig2_macs_per_cycle(),
                                rounds=1, iterations=1)

    rows = []
    for backbone, series in curves["backbone"].items():
        rows.append([f"backbone {backbone}"] + [round(v, 2) for v in series])
    for backbone, series in curves["fcr"].items():
        rows.append([f"FCR ({backbone})"] + [round(v, 2) for v in series])
    for backbone, series in curves["finetune"].items():
        rows.append([f"FCR finetune ({backbone})"] + [round(v, 2) for v in series])
    print(format_table(["operation"] + [f"{c} cores" for c in FIG2_CORE_COUNTS], rows,
                       title="\nFig. 2 — MACs/cycle vs active cores"))

    backbone_curves = curves["backbone"]
    # Left panel: every backbone speeds up with more cores; the x4 variant
    # reaches ~6.5 MACs/cycle while the heavily strided x1 saturates low.
    for series in backbone_curves.values():
        assert all(b >= a - 1e-6 for a, b in zip(series, series[1:]))
    assert backbone_curves["mobilenetv2_x4"][-1] == pytest.approx(6.5, rel=0.2)
    assert backbone_curves["mobilenetv2"][-1] < 0.6 * backbone_curves["mobilenetv2_x4"][-1]
    assert backbone_curves["mobilenetv2"][-1] < backbone_curves["mobilenetv2_x2"][-1]

    # Centre panel: the FCR is memory bound — well below 1 MAC/cycle.
    fcr_series = list(curves["fcr"].values())[0]
    assert max(fcr_series) < 1.0

    # Right panel: fine-tuning parallelizes better than FCR inference but far
    # worse than the convolutional backbone.
    finetune_series = list(curves["finetune"].values())[0]
    assert finetune_series[-1] > max(fcr_series)
    assert finetune_series[-1] < backbone_curves["mobilenetv2_x4"][-1]
